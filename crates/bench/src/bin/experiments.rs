//! Regenerate the tables and figures of the TDB paper's evaluation section on
//! synthetic dataset proxies.
//!
//! ```text
//! cargo run --release -p tdb-bench --bin experiments -- all --scale 0.05
//! cargo run --release -p tdb-bench --bin experiments -- table3
//! cargo run --release -p tdb-bench --bin experiments -- figure6 --scale 0.01 --seed 7
//! ```
//!
//! Subcommands: `table2`, `table3`, `table4`, `figure6`, `figure7`, `figure8`,
//! `figure9`, `figure10`, `large`, `stream`, `serve`, `weighted`, `bench`,
//! `sharding`, `watch`, `all`. Options: `--scale <f64>`,
//! `--seed <u64>`, `--slow-limit <edges>`, `--verify`, `--k <list>` (comma
//! separated, default `3,4,5,6,7`), `--budget <seconds>` (wall-clock budget
//! per cell; overruns print as `-`).
//!
//! The `stream` subcommand drives the `tdb-dynamic` churn scenario and prints
//! updates/sec plus the per-refresh speedup over full re-solves:
//!
//! ```text
//! cargo run --release -p tdb-bench --bin experiments -- stream \
//!     --stream-vertices 50000 --stream-edges 200000 --stream-updates 10000 \
//!     --stream-batch 100 --stream-churn 0.5 --stream-compact 0 --verify
//! ```
//!
//! The `serve` subcommand starts a resident [`tdb_serve::CoverServer`] on a
//! loopback port and drives it with concurrent reader and writer clients
//! while an in-process auditor re-verifies sampled snapshots:
//!
//! ```text
//! cargo run --release -p tdb-bench --bin experiments -- serve \
//!     --serve-vertices 50000 --serve-edges 200000 --serve-updates 10000 \
//!     --serve-readers 4 --serve-writers 2
//! ```
//!
//! The `weighted` subcommand runs the `Objective::MinWeight` scenario: a
//! skewed VIP cost model vs the cardinality baseline, the all-1 bit-exactness
//! contract, and a `Budget::MaxCost` best-effort solve with its residual
//! audit — it exits nonzero if any contract fails:
//!
//! ```text
//! cargo run --release -p tdb-bench --bin experiments -- weighted \
//!     --weighted-vertices 20000 --weighted-edges 80000
//! ```
//!
//! The `bench` subcommand runs the pinned perf-trajectory scenarios
//! (end-to-end solve, streaming churn, serve load, weighted objective,
//! instrumentation overhead) and records them to `BENCH_<tag>.json`
//! (`--bench-tag`, `--bench-out`); `--smoke` shrinks the workloads to CI
//! size.
//!
//! The `watch` subcommand is a live console view over a running server: it
//! polls `METRICS` / `HEALTH?` and renders rolling deltas (reads/s,
//! updates/s, interval p99 from histogram bucket deltas, queue depth,
//! publish age, watchdog status). Point it at an address, or give no address
//! to watch a self-contained in-process demo server under synthetic load:
//!
//! ```text
//! cargo run --release -p tdb-bench --bin experiments -- watch \
//!     --watch-addr 127.0.0.1:7411 --watch-iters 30 --watch-interval-ms 1000
//! ```
//!
//! Any subcommand accepts `--trace-out <file>`: the `tdb-obs` tracer *and
//! flight recorder* are enabled for the run and a Chrome trace-event file
//! (spans as complete events, recorder events as instants; loadable in
//! `chrome://tracing` or Perfetto) is written on exit.
//!
//! The `sharding` subcommand (also reachable as plain `--sharding`) builds a
//! seeded multi-SCC graph and compares the sequential whole-graph solve with
//! the SCC-partitioned `Solver::with_sharding` pipeline:
//!
//! ```text
//! cargo run --release -p tdb-bench --bin experiments -- --sharding \
//!     --shard-components 8 --shard-vertices 12500 --shard-edges 50000 \
//!     --shard-threads 4
//! ```

use std::process::ExitCode;

use tdb_bench::overhead::measure_solve_overhead;
use tdb_bench::serve::{format_serve_report, run_serve, ServeLoadConfig};
use tdb_bench::sharding::{format_sharding_report, run_sharding, ShardingConfig};
use tdb_bench::streaming::{format_stream_report, run_stream, StreamConfig};
use tdb_bench::trajectory::trajectory_document;
use tdb_bench::watch::{run_watch, WatchConfig};
use tdb_bench::weighted::{format_weighted_report, run_weighted, WeightedConfig};
use tdb_bench::{
    figure10_rows, figure67_rows, figure89_rows, format_rows, proxy, run_cell, table2_rows,
    table3_rows, table4_rows, ExperimentConfig,
};
use tdb_core::{Algorithm, HopConstraint};
use tdb_datasets::{Dataset, SynthesisConfig};
use tdb_graph::Graph;

struct Options {
    command: String,
    config: ExperimentConfig,
    stream: StreamConfig,
    sharding: ShardingConfig,
    serve: ServeLoadConfig,
    weighted: WeightedConfig,
    smoke: bool,
    bench_tag: String,
    bench_out: Option<String>,
    trace_out: Option<String>,
    watch_addr: Option<String>,
    watch_iters: usize,
    watch_interval_ms: u64,
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut slow_limit = 60_000usize;
    let mut verify = false;
    let mut ks = vec![3usize, 4, 5, 6, 7];
    let mut ks_explicit = false;
    let mut budget = None;
    // `--smoke` swaps the scenario baselines for the CI-sized workloads; it is
    // applied before the flag loop so explicit --stream-*/--serve-* flags
    // still override it.
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut stream = if smoke {
        StreamConfig::smoke()
    } else {
        StreamConfig::acceptance()
    };
    let mut sharding = ShardingConfig::acceptance();
    let mut sharding_flag = false;
    let mut serve = if smoke {
        ServeLoadConfig::smoke()
    } else {
        ServeLoadConfig::acceptance()
    };
    let mut weighted = if smoke {
        WeightedConfig::smoke()
    } else {
        WeightedConfig::acceptance()
    };
    let mut bench_tag = String::from("PR10");
    let mut bench_out = None;
    let mut trace_out = None;
    let mut watch_addr = None;
    let mut watch_iters = 10usize;
    let mut watch_interval_ms = 500u64;

    let mut it = args.into_iter().peekable();
    let mut command_explicit = false;
    if let Some(first) = it.peek() {
        if !first.starts_with("--") {
            command = it.next().unwrap();
            command_explicit = true;
        }
    }
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--scale" => {
                scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--slow-limit" => {
                slow_limit = value("--slow-limit")?
                    .parse()
                    .map_err(|e| format!("--slow-limit: {e}"))?
            }
            "--verify" => verify = true,
            "--budget" => {
                let secs: f64 = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
                budget = Some(std::time::Duration::try_from_secs_f64(secs).map_err(|_| {
                    format!("--budget: expected a non-negative number of seconds, got {secs}")
                })?);
            }
            "--k" => {
                ks = value("--k")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("--k: {e}"))?;
                ks_explicit = true;
            }
            "--stream-vertices" => {
                stream.vertices = value("--stream-vertices")?
                    .parse()
                    .map_err(|e| format!("--stream-vertices: {e}"))?;
            }
            "--stream-edges" => {
                stream.initial_edges = value("--stream-edges")?
                    .parse()
                    .map_err(|e| format!("--stream-edges: {e}"))?;
            }
            "--stream-updates" => {
                stream.updates = value("--stream-updates")?
                    .parse()
                    .map_err(|e| format!("--stream-updates: {e}"))?;
            }
            "--stream-batch" => {
                let b: usize = value("--stream-batch")?
                    .parse()
                    .map_err(|e| format!("--stream-batch: {e}"))?;
                if b == 0 {
                    return Err("--stream-batch: batch size must be positive".into());
                }
                stream.batch_size = b;
            }
            "--stream-churn" => {
                let c: f64 = value("--stream-churn")?
                    .parse()
                    .map_err(|e| format!("--stream-churn: {e}"))?;
                if !(0.0..=1.0).contains(&c) {
                    return Err(format!("--stream-churn: expected 0.0..=1.0, got {c}"));
                }
                stream.churn = c;
            }
            "--stream-compact" => {
                stream.compaction_threshold = value("--stream-compact")?
                    .parse()
                    .map_err(|e| format!("--stream-compact: {e}"))?;
            }
            "--sharding" => sharding_flag = true,
            "--shard-components" => {
                let c: usize = value("--shard-components")?
                    .parse()
                    .map_err(|e| format!("--shard-components: {e}"))?;
                if c == 0 {
                    return Err("--shard-components: need at least one component".into());
                }
                sharding.components = c;
            }
            "--shard-vertices" => {
                let v: usize = value("--shard-vertices")?
                    .parse()
                    .map_err(|e| format!("--shard-vertices: {e}"))?;
                if v < 2 {
                    return Err("--shard-vertices: a non-trivial SCC needs >= 2 vertices".into());
                }
                sharding.vertices_per_component = v;
            }
            "--shard-edges" => {
                sharding.edges_per_component = value("--shard-edges")?
                    .parse()
                    .map_err(|e| format!("--shard-edges: {e}"))?;
            }
            "--shard-threads" => {
                let t: usize = value("--shard-threads")?
                    .parse()
                    .map_err(|e| format!("--shard-threads: {e}"))?;
                if t == 0 {
                    return Err("--shard-threads: need at least one thread".into());
                }
                sharding.threads = t;
            }
            "--shard-algo" => {
                let raw = value("--shard-algo")?;
                sharding.algorithm = raw
                    .parse::<Algorithm>()
                    .map_err(|e| format!("--shard-algo: {e}"))?;
            }
            "--smoke" => {} // handled by the pre-scan above
            "--serve-vertices" => {
                serve.vertices = value("--serve-vertices")?
                    .parse()
                    .map_err(|e| format!("--serve-vertices: {e}"))?;
            }
            "--serve-edges" => {
                serve.initial_edges = value("--serve-edges")?
                    .parse()
                    .map_err(|e| format!("--serve-edges: {e}"))?;
            }
            "--serve-updates" => {
                let u: usize = value("--serve-updates")?
                    .parse()
                    .map_err(|e| format!("--serve-updates: {e}"))?;
                if u == 0 {
                    return Err("--serve-updates: need at least one update".into());
                }
                serve.updates = u;
            }
            "--serve-readers" => {
                let r: usize = value("--serve-readers")?
                    .parse()
                    .map_err(|e| format!("--serve-readers: {e}"))?;
                if r == 0 {
                    return Err("--serve-readers: need at least one reader".into());
                }
                serve.readers = r;
            }
            "--serve-writers" => {
                let w: usize = value("--serve-writers")?
                    .parse()
                    .map_err(|e| format!("--serve-writers: {e}"))?;
                if w == 0 {
                    return Err("--serve-writers: need at least one writer".into());
                }
                serve.writers = w;
            }
            "--serve-breakers" => {
                let b: f64 = value("--serve-breakers")?
                    .parse()
                    .map_err(|e| format!("--serve-breakers: {e}"))?;
                if !(0.0..=1.0).contains(&b) {
                    return Err(format!("--serve-breakers: expected 0.0..=1.0, got {b}"));
                }
                serve.breaker_ratio = b;
            }
            "--weighted-vertices" => {
                let v: usize = value("--weighted-vertices")?
                    .parse()
                    .map_err(|e| format!("--weighted-vertices: {e}"))?;
                if v < 2 {
                    return Err("--weighted-vertices: need at least two vertices".into());
                }
                weighted.vertices = v;
            }
            "--weighted-edges" => {
                weighted.edges = value("--weighted-edges")?
                    .parse()
                    .map_err(|e| format!("--weighted-edges: {e}"))?;
            }
            "--weighted-vip-degree" => {
                weighted.vip_degree = value("--weighted-vip-degree")?
                    .parse()
                    .map_err(|e| format!("--weighted-vip-degree: {e}"))?;
            }
            "--weighted-vip-cost" => {
                let c: u64 = value("--weighted-vip-cost")?
                    .parse()
                    .map_err(|e| format!("--weighted-vip-cost: {e}"))?;
                if c == 0 {
                    return Err("--weighted-vip-cost: costs are clamped to >= 1".into());
                }
                weighted.vip_cost = c;
            }
            "--bench-tag" => bench_tag = value("--bench-tag")?,
            "--bench-out" => bench_out = Some(value("--bench-out")?),
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--watch-addr" => watch_addr = Some(value("--watch-addr")?),
            "--watch-iters" => {
                let n: usize = value("--watch-iters")?
                    .parse()
                    .map_err(|e| format!("--watch-iters: {e}"))?;
                if n == 0 {
                    return Err("--watch-iters: need at least one frame".into());
                }
                watch_iters = n;
            }
            "--watch-interval-ms" => {
                let ms: u64 = value("--watch-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--watch-interval-ms: {e}"))?;
                if ms == 0 {
                    return Err("--watch-interval-ms: interval must be positive".into());
                }
                watch_interval_ms = ms;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    // The stream, sharding and serve scenarios share the global --seed /
    // --k / --verify flags.
    stream.seed = seed;
    stream.verify_each_batch = verify;
    sharding.seed = seed;
    sharding.verify = verify;
    serve.seed = seed;
    weighted.seed = seed;
    if ks_explicit {
        if let Some(&k) = ks.first() {
            stream.k = k;
            sharding.k = k;
            serve.k = k;
            weighted.k = k;
        }
    }
    // `--sharding` selects the scenario without requiring a positional
    // command; a conflicting explicit subcommand is an error, not silently
    // overridden.
    if sharding_flag {
        if command_explicit && command != "sharding" {
            return Err(format!(
                "--sharding conflicts with the {command:?} subcommand; drop one of the two"
            ));
        }
        command = "sharding".to_string();
    }

    Ok(Options {
        command,
        config: ExperimentConfig {
            synthesis: SynthesisConfig {
                scale,
                seed,
                ..SynthesisConfig::harness_default()
            },
            ks,
            slow_algorithm_edge_limit: slow_limit,
            verify,
            time_budget: budget,
        },
        stream,
        sharding,
        serve,
        weighted,
        smoke,
        bench_tag,
        bench_out,
        trace_out,
        watch_addr,
        watch_iters,
        watch_interval_ms,
    })
}

/// `watch` with no `--watch-addr`: start an in-process smoke server, drive
/// it with one synthetic reader/writer client, and watch that. Lets the
/// subcommand demo the rolling view without a separately running deployment.
fn watch_demo_server(
    watch: &WatchConfig,
) -> Result<Vec<tdb_bench::watch::WatchFrame>, tdb_serve::ClientError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use tdb_core::prelude::*;
    use tdb_dynamic::SolveDynamic;
    use tdb_graph::gen::erdos_renyi_gnm;
    use tdb_graph::VertexId;
    use tdb_serve::{CoverServer, ServeClient, ServeConfig};

    let n = 2_000u64;
    let graph = erdos_renyi_gnm(n as usize, 8_000, 42);
    let dynamic = Solver::new(Algorithm::TdbPlusPlus)
        .solve_dynamic(graph, &HopConstraint::new(4))
        .expect("unbudgeted solve cannot fail");
    let server = CoverServer::start(dynamic, ServeConfig::default())
        .expect("binding a loopback listener cannot fail");
    let addr = server.local_addr();
    print_block(&format!("Watch: in-process demo server on {addr}"), &[]);

    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).expect("demo traffic connect");
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let _ = client.cover((i % n) as VertexId);
                if i % 16 == 0 {
                    let u = (i % n) as VertexId;
                    let v = ((i * 7 + 3) % n) as VertexId;
                    if u != v {
                        let _ = client.insert(u, v);
                    }
                }
                i += 1;
            }
        })
    };

    let result = run_watch(
        &WatchConfig {
            addr: addr.to_string(),
            iterations: watch.iterations,
            interval: watch.interval,
        },
        |line| println!("{line}"),
    );

    stop.store(true, Ordering::Release);
    traffic.join().expect("demo traffic thread");
    let mut client = ServeClient::connect(addr)?;
    client.shutdown()?;
    server.join();
    result
}

fn print_block(title: &str, lines: &[String]) {
    println!("\n=== {title} ===");
    for line in lines {
        println!("{line}");
    }
}

fn figure67(config: &ExperimentConfig, runtime: bool) {
    let rows = figure67_rows(config, &Dataset::small_and_medium());
    let title = if runtime {
        "Figure 6: runtime (s) vs k — DARC-DV / BUR+ / TDB++"
    } else {
        "Figure 7: cover size vs k — DARC-DV / BUR+ / TDB++"
    };
    print_block(title, &format_rows(&rows));
}

fn large_scale(config: &ExperimentConfig) {
    // The lower block of Table III: the four largest proxies, TDB++ only.
    let constraint = HopConstraint::new(5);
    let mut lines = Vec::new();
    for dataset in Dataset::large_scale() {
        let g = proxy(dataset, config);
        if let Some(r) = run_cell(&g, dataset, Algorithm::TdbPlusPlus, &constraint, config) {
            lines.push(format!(
                "{:<5} |V|={:<10} |E|={:<12} TDB++ size={:<10} time={:.3}s",
                r.dataset,
                g.num_vertices(),
                g.num_edges(),
                r.cover_size,
                r.seconds()
            ));
        }
    }
    print_block("Table III (large-scale block): TDB++ only, k = 5", &lines);
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: experiments [table2|table3|table4|figure6|figure7|figure8|figure9|figure10|large|stream|serve|weighted|bench|sharding|watch|all] [--scale F] [--seed N] [--slow-limit E] [--k 3,4,5] [--verify] [--budget SECS] [--smoke] [--trace-out PATH]");
            eprintln!("       stream flags: [--stream-vertices N] [--stream-edges M] [--stream-updates U] [--stream-batch B] [--stream-churn 0..1] [--stream-compact T]");
            eprintln!("       serve flags: [--serve-vertices N] [--serve-edges M] [--serve-updates U] [--serve-readers R] [--serve-writers W] [--serve-breakers 0..1]");
            eprintln!("       weighted flags: [--weighted-vertices N] [--weighted-edges M] [--weighted-vip-degree D] [--weighted-vip-cost C]");
            eprintln!("       bench flags: [--bench-tag TAG] [--bench-out PATH]");
            eprintln!("       watch flags: [--watch-addr HOST:PORT] [--watch-iters N] [--watch-interval-ms MS] (no addr: in-process demo server)");
            eprintln!("       sharding flags: [--sharding] [--shard-components C] [--shard-vertices N] [--shard-edges M] [--shard-threads T] [--shard-algo NAME]");
            return ExitCode::FAILURE;
        }
    };
    if options.trace_out.is_some() {
        tdb_obs::trace::set_enabled(true);
        tdb_obs::event::set_enabled(true);
    }
    let code = run(&options);
    if let Some(path) = &options.trace_out {
        tdb_obs::trace::set_enabled(false);
        tdb_obs::event::set_enabled(false);
        let spans = tdb_obs::trace::drain();
        let events = tdb_obs::event::drain();
        let dropped = tdb_obs::trace::dropped() + tdb_obs::event::dropped();
        let json = tdb_obs::trace::chrome_trace_json_with_events(&spans, &events);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "\ntrace written to {path} ({} spans, {} instant events{}) — load it in chrome://tracing or https://ui.perfetto.dev",
            spans.len(),
            events.len(),
            if dropped > 0 {
                format!(", {dropped} dropped by ring overflow")
            } else {
                String::new()
            }
        );
    }
    code
}

fn run(options: &Options) -> ExitCode {
    let cfg = &options.config;
    println!(
        "# TDB experiment harness — scale {}, seed {}, ks {:?}, slow-limit {} edges, verify {}, budget {}",
        cfg.synthesis.scale,
        cfg.synthesis.seed,
        cfg.ks,
        cfg.slow_algorithm_edge_limit,
        cfg.verify,
        cfg.time_budget
            .map(|b| format!("{:.3}s", b.as_secs_f64()))
            .unwrap_or_else(|| "none".to_string()),
    );

    match options.command.as_str() {
        "table2" => print_block(
            "Table II: dataset statistics (paper vs proxy)",
            &table2_rows(cfg),
        ),
        "table3" => print_block(
            "Table III: cover size and runtime, k = 5",
            &table3_rows(cfg),
        ),
        "table4" => print_block(
            "Table IV: cover size with / without 2-cycles, k = 5",
            &table4_rows(cfg),
        ),
        "figure6" => figure67(cfg, true),
        "figure7" => figure67(cfg, false),
        "figure8" | "figure9" => print_block(
            "Figures 8–9: BUR vs BUR+ (runtime and cover size) on WKV / WGO",
            &format_rows(&figure89_rows(cfg)),
        ),
        "figure10" => print_block(
            "Figure 10: TDB vs TDB+ vs TDB++ runtime on WKV / WGO",
            &format_rows(&figure10_rows(cfg)),
        ),
        "large" => large_scale(cfg),
        "sharding" => {
            let s = &options.sharding;
            let mut lines = vec![format!(
                "workload  {} components x {} vertices, ~{} edges each, k = {}, algorithm {}",
                s.components,
                s.vertices_per_component,
                s.edges_per_component,
                s.k,
                s.algorithm.name(),
            )];
            let report = run_sharding(s);
            lines.extend(format_sharding_report(&report));
            print_block("Sharded solving: SCC-partitioned vs whole-graph", &lines);
            if !report.covers_identical {
                eprintln!("error: sharded and unsharded covers differ");
                return ExitCode::FAILURE;
            }
            if report.verified == Some(false) {
                eprintln!("error: the sharded cover failed the validity audit");
                return ExitCode::FAILURE;
            }
        }
        "serve" => {
            let s = &options.serve;
            let mut lines = vec![format!(
                "workload  {} updates via {} writers, {} readers ({:.0}% BREAKERS?), k = {}{}",
                s.updates,
                s.writers,
                s.readers,
                s.breaker_ratio * 100.0,
                s.k,
                if options.smoke { ", smoke" } else { "" }
            )];
            let report = run_serve(s);
            lines.extend(format_serve_report(&report));
            print_block("Serving: epoch-published snapshots under live load", &lines);
            if !report.healthy() {
                eprintln!("error: the serve load run failed its audit (see report above)");
                return ExitCode::FAILURE;
            }
        }
        "weighted" => {
            let w = &options.weighted;
            let mut lines = vec![format!(
                "workload  |V|={} |E|~{} k={} seed {}  VIP: degree >= {} costs {}x",
                w.vertices, w.edges, w.k, w.seed, w.vip_degree, w.vip_cost
            )];
            let report = run_weighted(w);
            lines.extend(format_weighted_report(&report));
            print_block(
                "Weighted objective: MinWeight vs MinCardinality, budgeted best-effort",
                &lines,
            );
            if !report.healthy() {
                eprintln!("error: a weighted-objective contract failed (see report above)");
                return ExitCode::FAILURE;
            }
        }
        "bench" => {
            // The pinned perf trajectory: one end-to-end solve, the streaming
            // churn scenario, the serve load scenario, the weighted objective
            // scenario, and the measured cost of the tdb-obs instrumentation,
            // recorded to BENCH_<tag>.json for PR-over-PR comparison.
            let dataset = Dataset::WikiVote;
            let g = proxy(dataset, cfg);
            let constraint = HopConstraint::new(5);
            let Some(e2e) = run_cell(&g, dataset, Algorithm::TdbPlusPlus, &constraint, cfg) else {
                eprintln!("error: the end-to-end cell was gated off");
                return ExitCode::FAILURE;
            };
            print_block(
                "Bench 1/5: end-to-end TDB++ (k = 5)",
                &format_rows(std::slice::from_ref(&e2e)),
            );
            let stream_report = run_stream(&options.stream);
            print_block(
                "Bench 2/5: streaming churn",
                &format_stream_report(&stream_report),
            );
            let serve_report = run_serve(&options.serve);
            print_block("Bench 3/5: serve load", &format_serve_report(&serve_report));
            let weighted_report = run_weighted(&options.weighted);
            print_block(
                "Bench 4/5: weighted objective (MinWeight vs MinCardinality, budgeted)",
                &format_weighted_report(&weighted_report),
            );
            // The solve under test is ~1 ms, so single samples carry percent-
            // scale scheduler noise. 300 paired samples (~0.7 s) let the
            // median-of-ratios estimator resolve the sub-percent true
            // overhead well inside the 2% budget.
            let overhead_samples = if options.smoke { 1 } else { 300 };
            let overhead = measure_solve_overhead(&g, &constraint, overhead_samples);
            print_block(
                "Bench 5/5: tdb-obs instrumentation overhead (TDB++, registry off vs on)",
                std::slice::from_ref(&overhead.format()),
            );

            let ok = (!options.stream.verify_each_batch
                || stream_report.valid_batches == stream_report.batches)
                && serve_report.healthy()
                && weighted_report.healthy();
            let doc = trajectory_document(
                &options.bench_tag,
                &e2e,
                &stream_report,
                &serve_report,
                &weighted_report,
                &overhead,
            );
            let path = options
                .bench_out
                .clone()
                .unwrap_or_else(|| format!("BENCH_{}.json", options.bench_tag));
            if let Err(e) = std::fs::write(&path, doc.render()) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("\ntrajectory written to {path}");
            if !ok {
                eprintln!("error: a bench scenario failed its audit (see reports above)");
                return ExitCode::FAILURE;
            }
        }
        "watch" => {
            let watch = WatchConfig {
                addr: options.watch_addr.clone().unwrap_or_default(),
                iterations: options.watch_iters,
                interval: std::time::Duration::from_millis(options.watch_interval_ms),
            };
            let outcome = match &options.watch_addr {
                Some(addr) => {
                    print_block(&format!("Watch: {addr}"), &[]);
                    run_watch(&watch, |line| println!("{line}"))
                }
                None => watch_demo_server(&watch),
            };
            if let Err(e) = outcome {
                eprintln!("error: watch failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        "stream" => {
            let s = &options.stream;
            let mut lines = vec![format!(
                "workload  {} updates, batch {}, churn {:.0}%, k = {}, compact {}",
                s.updates,
                s.batch_size,
                s.churn * 100.0,
                s.k,
                if s.compaction_threshold == 0 {
                    "auto".to_string()
                } else {
                    s.compaction_threshold.to_string()
                }
            )];
            let report = run_stream(s);
            lines.extend(format_stream_report(&report));
            print_block(
                "Streaming: incremental cover maintenance vs full re-solve",
                &lines,
            );
            if s.verify_each_batch && report.valid_batches != report.batches {
                eprintln!("error: an intermediate cover failed the validity audit");
                return ExitCode::FAILURE;
            }
        }
        "all" => {
            print_block(
                "Table II: dataset statistics (paper vs proxy)",
                &table2_rows(cfg),
            );
            print_block(
                "Table III: cover size and runtime, k = 5",
                &table3_rows(cfg),
            );
            print_block(
                "Table IV: cover size with / without 2-cycles, k = 5",
                &table4_rows(cfg),
            );
            figure67(cfg, true);
            print_block(
                "Figures 8–9: BUR vs BUR+ (runtime and cover size) on WKV / WGO",
                &format_rows(&figure89_rows(cfg)),
            );
            print_block(
                "Figure 10: TDB vs TDB+ vs TDB++ runtime on WKV / WGO",
                &format_rows(&figure10_rows(cfg)),
            );
            large_scale(cfg);
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
