//! The sharded-solving scenario: multi-component graphs, sharded vs unsharded.
//!
//! Production graphs (payment networks, dependency graphs, social subgraphs
//! per region) are rarely one giant strongly connected component — they
//! decompose into many medium components joined by acyclic "bridge" traffic.
//! This scenario synthesizes exactly that shape: `components` disjoint
//! Erdős–Rényi-style blocks chained by one-way bridges (which keep the blocks
//! separate SCCs), plus an acyclic fringe. It then solves the same instance
//! twice — sequential whole-graph vs [`ShardingMode`]-partitioned — and
//! reports the speedup and the cover agreement the partition argument
//! guarantees.

use std::time::Duration;

use tdb_core::{Algorithm, HopConstraint, Partitioner, ShardingMode, Solver};
use tdb_graph::gen::{multi_scc_chain, MultiSccConfig};
use tdb_graph::{CsrGraph, Graph};

/// Parameters of the multi-component scenario.
#[derive(Debug, Clone)]
pub struct ShardingConfig {
    /// Number of non-trivial strongly connected components.
    pub components: usize,
    /// Vertices per component.
    pub vertices_per_component: usize,
    /// Random intra-component edges per component (before dedup).
    pub edges_per_component: usize,
    /// Hop constraint `k`.
    pub k: usize,
    /// Worker threads of the sharded solve.
    pub threads: usize,
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// RNG seed.
    pub seed: u64,
    /// Independently audit both covers with `verify_cover` (validity; adds a
    /// full verification pass per solve).
    pub verify: bool,
}

impl ShardingConfig {
    /// The acceptance-scale scenario: 8 components × 12.5k vertices = 100k
    /// vertices, 4 worker threads, top-down TDB++ at `k = 6` (heavy enough
    /// that the per-vertex searches dwarf the partition overhead).
    pub fn acceptance() -> Self {
        ShardingConfig {
            components: 8,
            vertices_per_component: 12_500,
            edges_per_component: 50_000,
            k: 6,
            threads: 4,
            algorithm: Algorithm::TdbPlusPlus,
            seed: 42,
            verify: false,
        }
    }

    /// A sub-second configuration for CI smoke runs and unit tests.
    pub fn smoke() -> Self {
        ShardingConfig {
            components: 6,
            vertices_per_component: 300,
            edges_per_component: 1_200,
            k: 4,
            threads: 4,
            algorithm: Algorithm::TdbPlusPlus,
            seed: 42,
            verify: true,
        }
    }
}

/// Build the seeded multi-SCC graph of a [`ShardingConfig`]: equal
/// [`multi_scc_chain`] blocks plus a short acyclic tail of trivial SCCs.
pub fn multi_scc_graph(config: &ShardingConfig) -> CsrGraph {
    multi_scc_chain(&MultiSccConfig::uniform(
        config.components,
        config.vertices_per_component as u32,
        config.edges_per_component,
        (config.vertices_per_component as u32 / 10).max(2),
        config.seed,
    ))
}

/// The measurements of one sharded-vs-unsharded comparison.
#[derive(Debug, Clone)]
pub struct ShardingReport {
    /// Vertices of the instance.
    pub vertices: usize,
    /// Edges of the instance.
    pub edges: usize,
    /// Non-trivial SCCs found by the partitioner.
    pub non_trivial_components: usize,
    /// Worker threads used by the sharded solve.
    pub threads: usize,
    /// Logical CPUs of the machine the measurement ran on.
    pub host_cpus: usize,
    /// Algorithm name.
    pub algorithm: String,
    /// Wall-clock time of the sequential whole-graph solve.
    pub unsharded: Duration,
    /// Wall-clock time of the partitioned solve.
    pub sharded: Duration,
    /// Wall-clock time of SCC condensation + shard extraction alone.
    pub partition_time: Duration,
    /// Measured solve time of each shard, solved one at a time (largest
    /// shard first — the executor's queue order).
    pub shard_times: Vec<Duration>,
    /// Cover size of the unsharded solve.
    pub unsharded_cover: usize,
    /// Cover size of the sharded solve.
    pub sharded_cover: usize,
    /// Whether the two covers were identical vertex sets.
    pub covers_identical: bool,
    /// Whether the sharded cover passed the independent validity audit
    /// (`None` when [`ShardingConfig::verify`] was off).
    pub verified: Option<bool>,
}

impl ShardingReport {
    /// `unsharded / sharded` wall-clock ratio, as measured on this host.
    pub fn speedup(&self) -> f64 {
        self.unsharded.as_secs_f64() / self.sharded.as_secs_f64().max(1e-12)
    }

    /// The makespan of scheduling the *measured* per-shard solve times onto
    /// `threads` workers with the executor's largest-first queue, plus the
    /// measured partition time: the wall clock the sharded solve reaches once
    /// the host actually has `threads` idle cores. On a host with fewer CPUs
    /// than workers this is a projection — [`format_sharding_report`] labels
    /// it as such — but every number entering it is measured, not modeled.
    pub fn makespan_on(&self, threads: usize) -> Duration {
        let mut workers = vec![Duration::ZERO; threads.max(1)];
        for &t in &self.shard_times {
            // The queue hands the next shard to the first worker to go idle.
            let min = workers.iter_mut().min().expect("at least one worker");
            *min += t;
        }
        self.partition_time + workers.into_iter().max().unwrap_or(Duration::ZERO)
    }

    /// `unsharded` over [`ShardingReport::makespan_on`] for the configured
    /// worker count.
    pub fn projected_speedup(&self) -> f64 {
        self.unsharded.as_secs_f64() / self.makespan_on(self.threads).as_secs_f64().max(1e-12)
    }
}

/// Run the scenario: build the graph, solve both ways, compare.
pub fn run_sharding(config: &ShardingConfig) -> ShardingReport {
    let g = multi_scc_graph(config);
    let constraint = HopConstraint::new(config.k);

    let partition_start = std::time::Instant::now();
    let partition = Partitioner::new().partition(&g);
    let partition_time = partition_start.elapsed();

    let plain = Solver::new(config.algorithm)
        .solve(&g, &constraint)
        .expect("unbudgeted solve cannot fail");
    let sharded = Solver::new(config.algorithm)
        .with_sharding(ShardingMode::Threads(config.threads))
        .solve(&g, &constraint)
        .expect("unbudgeted solve cannot fail");

    // Per-shard breakdown: solve each extracted component on its own, in the
    // executor's largest-first order, timing each solve.
    let shard_times: Vec<Duration> = partition
        .shards
        .iter()
        .map(|shard| {
            Solver::new(config.algorithm)
                .solve(&shard.graph, &constraint)
                .expect("unbudgeted solve cannot fail")
                .metrics
                .elapsed
        })
        .collect();

    ShardingReport {
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        non_trivial_components: partition.shards.len(),
        threads: config.threads,
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        algorithm: config.algorithm.name().to_string(),
        unsharded: plain.metrics.elapsed,
        sharded: sharded.metrics.elapsed,
        partition_time,
        shard_times,
        unsharded_cover: plain.cover_size(),
        sharded_cover: sharded.cover_size(),
        covers_identical: plain.cover == sharded.cover,
        verified: config
            .verify
            .then(|| tdb_core::prelude::is_valid_cover(&g, &sharded.cover, &constraint)),
    }
}

/// Format a report as the lines the `experiments` binary prints.
pub fn format_sharding_report(r: &ShardingReport) -> Vec<String> {
    let mut lines = vec![
        format!(
            "graph     |V|={} |E|={} non-trivial SCCs={}",
            r.vertices, r.edges, r.non_trivial_components
        ),
        format!(
            "unsharded {:<10} size={:<8} time={:.3}s",
            r.algorithm,
            r.unsharded_cover,
            r.unsharded.as_secs_f64()
        ),
        format!(
            "sharded   {:<10} size={:<8} time={:.3}s  ({} threads on {} CPUs)",
            r.algorithm,
            r.sharded_cover,
            r.sharded.as_secs_f64(),
            r.threads,
            r.host_cpus,
        ),
        format!(
            "breakdown partition {:.3}s + shards [{}]",
            r.partition_time.as_secs_f64(),
            r.shard_times
                .iter()
                .map(|t| format!("{:.3}s", t.as_secs_f64()))
                .collect::<Vec<_>>()
                .join(" "),
        ),
        format!(
            "speedup   {:.2}x measured  covers identical: {}  verified: {}",
            r.speedup(),
            if r.covers_identical { "yes" } else { "NO" },
            match r.verified {
                Some(true) => "ok",
                Some(false) => "FAIL",
                None => "-",
            }
        ),
    ];
    if r.host_cpus < r.threads {
        lines.push(format!(
            "          {:.2}x at {} threads from the measured per-shard times \
             (host has only {} CPUs; largest-first schedule of the breakdown above)",
            r.projected_speedup(),
            r.threads,
            r.host_cpus,
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::prelude::is_valid_cover;

    #[test]
    fn multi_scc_graph_has_the_requested_component_structure() {
        let config = ShardingConfig::smoke();
        let g = multi_scc_graph(&config);
        let partition = Partitioner::new().partition(&g);
        assert_eq!(partition.shards.len(), config.components);
        assert!(
            partition.trivial_vertices >= 2,
            "the fringe must be acyclic"
        );
        for shard in &partition.shards {
            assert_eq!(shard.len(), config.vertices_per_component);
        }
    }

    #[test]
    fn smoke_scenario_agrees_and_produces_valid_covers() {
        let config = ShardingConfig::smoke();
        let report = run_sharding(&config);
        assert!(report.covers_identical);
        assert_eq!(report.sharded_cover, report.unsharded_cover);
        assert_eq!(report.non_trivial_components, config.components);
        let g = multi_scc_graph(&config);
        let run = Solver::new(config.algorithm)
            .with_sharding(ShardingMode::Threads(config.threads))
            .solve(&g, &HopConstraint::new(config.k))
            .unwrap();
        assert!(is_valid_cover(
            &g,
            &run.cover,
            &HopConstraint::new(config.k)
        ));
        assert_eq!(report.shard_times.len(), config.components);
        let lines = format_sharding_report(&report);
        assert!(lines.len() >= 5);
        assert!(lines[3].contains("breakdown"));
        assert!(lines[4].contains("speedup"));
    }

    #[test]
    fn makespan_schedules_largest_first_onto_idle_workers() {
        let report = ShardingReport {
            vertices: 0,
            edges: 0,
            non_trivial_components: 4,
            threads: 2,
            host_cpus: 1,
            algorithm: "TDB++".into(),
            unsharded: Duration::from_secs(10),
            sharded: Duration::from_secs(10),
            partition_time: Duration::from_secs(1),
            shard_times: [4u64, 3, 2, 1].map(Duration::from_secs).to_vec(),
            unsharded_cover: 0,
            sharded_cover: 0,
            covers_identical: true,
            verified: None,
        };
        // Two workers: {4, 1} and {3, 2} -> makespan 5, plus 1s of partition.
        assert_eq!(report.makespan_on(2), Duration::from_secs(6));
        // One worker degenerates to the sequential sum.
        assert_eq!(report.makespan_on(1), Duration::from_secs(11));
        assert!((report.projected_speedup() - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn graph_generation_is_deterministic() {
        let config = ShardingConfig::smoke();
        let a = multi_scc_graph(&config);
        let b = multi_scc_graph(&config);
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }
}
