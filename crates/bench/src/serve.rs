//! Load generator for the resident [`tdb_serve::CoverServer`].
//!
//! The scenario the serving layer exists for: N reader clients hammer
//! `COVER?` / `BREAKERS?` queries over TCP while M writer clients stream edge
//! updates, and an in-process auditor samples published snapshots the whole
//! time, re-verifying each one against its own graph version and checking
//! that observed epochs never go backwards.
//!
//! Three consumers drive it:
//!
//! * the `experiments serve` subcommand (all knobs exposed as flags),
//! * the `experiments bench` perf-trajectory recorder (`BENCH_*.json`), and
//! * the CI smoke step (small graph, fixed seed, audit on).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdb_core::prelude::*;
use tdb_dynamic::SolveDynamic;
use tdb_graph::gen::{erdos_renyi_gnm, Xoshiro256};
use tdb_graph::{Graph, VertexId};
use tdb_serve::{CoverServer, EngineConfig, ServeClient, ServeConfig};

use tdb_obs::{Histogram, Percentiles};

/// Parameters of a serve load run.
#[derive(Debug, Clone)]
pub struct ServeLoadConfig {
    /// Vertices of the synthetic initial graph.
    pub vertices: usize,
    /// Edges of the synthetic initial graph.
    pub initial_edges: usize,
    /// Hop constraint `k`.
    pub k: usize,
    /// RNG seed for graph synthesis and the client workloads.
    pub seed: u64,
    /// Concurrent reader connections.
    pub readers: usize,
    /// Concurrent writer connections.
    pub writers: usize,
    /// Total edge updates streamed across all writers.
    pub updates: usize,
    /// Fraction of reader requests that are `BREAKERS?` (the rest are
    /// `COVER?`), in `0.0..=1.0`.
    pub breaker_ratio: f64,
    /// Writer-loop tuning of the embedded engine.
    pub engine: EngineConfig,
}

impl ServeLoadConfig {
    /// The acceptance workload: 10k streamed updates against a 50k-vertex
    /// graph under 4 concurrent readers.
    pub fn acceptance() -> Self {
        ServeLoadConfig {
            vertices: 50_000,
            initial_edges: 200_000,
            k: 4,
            seed: 42,
            readers: 4,
            writers: 2,
            updates: 10_000,
            breaker_ratio: 0.1,
            engine: EngineConfig::default(),
        }
    }

    /// Tiny configuration for unit tests and the CI smoke step.
    pub fn smoke() -> Self {
        ServeLoadConfig {
            vertices: 600,
            initial_edges: 2_400,
            k: 4,
            seed: 7,
            readers: 2,
            writers: 1,
            updates: 400,
            breaker_ratio: 0.2,
            engine: EngineConfig {
                batch_window: Duration::from_micros(500),
                ..Default::default()
            },
        }
    }
}

/// Outcome of one serve load run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Vertices of the initial graph.
    pub vertices: usize,
    /// Edges of the initial graph.
    pub initial_edges: usize,
    /// Cover size of the seeding solve.
    pub seed_cover: usize,
    /// Reader connections driven.
    pub readers: usize,
    /// Writer connections driven.
    pub writers: usize,
    /// Read requests answered across all readers.
    pub reads: u64,
    /// Read requests per second of wall-clock (all readers combined).
    pub reads_per_sec: f64,
    /// Per-request read latency percentiles, in seconds (`None` when no read
    /// completed).
    pub read_latency: Option<Percentiles>,
    /// Updates streamed by the writers (every one was acknowledged).
    pub updates_streamed: u64,
    /// Wall-clock from the first writer starting until the engine had applied
    /// every streamed update.
    pub update_wall: Duration,
    /// Snapshots the auditor sampled.
    pub snapshots_audited: usize,
    /// Sampled snapshots whose cover re-verified against their own graph.
    pub snapshots_valid: usize,
    /// Whether every reader (and the auditor) observed non-decreasing epochs.
    pub epochs_monotone: bool,
    /// Last epoch published before shutdown.
    pub final_epoch: u64,
    /// Cover size after shutdown (post closing minimize).
    pub final_cover: usize,
    /// Whether the final engine state passed the validity audit.
    pub final_valid: bool,
    /// Batches the engine applied.
    pub batches: u64,
    /// Operations cancelled by window coalescing.
    pub coalesced: u64,
    /// Cover vertices shed by periodic minimization.
    pub pruned: u64,
}

impl ServeReport {
    /// Streamed updates per second of wall-clock (enqueue to full drain).
    pub fn updates_per_sec(&self) -> f64 {
        if self.update_wall.is_zero() {
            return f64::INFINITY;
        }
        self.updates_streamed as f64 / self.update_wall.as_secs_f64()
    }

    /// Whether the run met the scenario's own bar: all sampled snapshots
    /// valid, monotone epochs, nonzero read and update throughput, and a
    /// valid final state.
    pub fn healthy(&self) -> bool {
        self.snapshots_audited > 0
            && self.snapshots_valid == self.snapshots_audited
            && self.epochs_monotone
            && self.reads > 0
            && self.updates_streamed > 0
            && self.final_valid
    }
}

/// Run the serve load scenario: start a server, drive it over TCP, audit
/// snapshots in-process, shut down gracefully.
pub fn run_serve(config: &ServeLoadConfig) -> ServeReport {
    assert!(config.readers > 0, "need at least one reader");
    assert!(config.writers > 0, "need at least one writer");
    assert!(config.updates > 0, "need at least one update");
    assert!(
        (0.0..=1.0).contains(&config.breaker_ratio),
        "breaker_ratio must be within 0.0..=1.0"
    );

    let graph = erdos_renyi_gnm(config.vertices, config.initial_edges, config.seed);
    let initial_edges = graph.num_edges();
    let dynamic = Solver::new(Algorithm::TdbPlusPlus)
        .solve_dynamic(graph, &HopConstraint::new(config.k))
        .expect("unbudgeted solve cannot fail");
    let seed_cover = dynamic.cover().len();

    let server = CoverServer::start(
        dynamic,
        ServeConfig {
            engine: config.engine,
            ..Default::default()
        },
    )
    .expect("binding a loopback listener cannot fail");
    let addr = server.local_addr();
    let done = Arc::new(AtomicBool::new(false));
    let n = config.vertices as u64;

    // Readers: per-request latency histogram + a monotone-epoch check.
    let read_hist = Histogram::new();
    let reader_handles: Vec<_> = (0..config.readers)
        .map(|r| {
            let done = Arc::clone(&done);
            let read_hist = read_hist.clone();
            let breaker_permille = (config.breaker_ratio * 1000.0) as u64;
            let seed = config.seed ^ (0xbeef + r as u64);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("reader connect");
                let mut rng = Xoshiro256::seed_from_u64(seed);
                let mut last_epoch = 0u64;
                let mut monotone = true;
                while !done.load(Ordering::Acquire) {
                    let t = Instant::now();
                    let epoch = if rng.next_bounded(1000) < breaker_permille {
                        let u = rng.next_bounded(n) as VertexId;
                        let v = rng.next_bounded(n) as VertexId;
                        client.breakers(u, v).expect("BREAKERS? failed").epoch
                    } else {
                        let v = rng.next_bounded(n) as VertexId;
                        client.cover(v).expect("COVER? failed").epoch
                    };
                    read_hist.record(t.elapsed());
                    monotone &= epoch >= last_epoch;
                    last_epoch = epoch;
                }
                monotone
            })
        })
        .collect();

    // Auditor: sample published snapshots and re-verify each one from scratch
    // against its own graph version.
    let auditor = {
        let snapshots = server.snapshots();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut audited = 0usize;
            let mut valid = 0usize;
            let mut last_epoch = 0u64;
            let mut monotone = true;
            loop {
                let finishing = done.load(Ordering::Acquire);
                let snap = snapshots.load();
                monotone &= snap.epoch() >= last_epoch;
                last_epoch = snap.epoch();
                audited += 1;
                valid += usize::from(snap.audit_valid());
                if finishing {
                    // The post-drain snapshot was just audited; stop.
                    return (audited, valid, monotone);
                }
            }
        })
    };

    // Writers: stream the update budget over TCP, every op acknowledged.
    let update_timer = Instant::now();
    let per_writer = config.updates / config.writers;
    let remainder = config.updates % config.writers;
    let writer_handles: Vec<_> = (0..config.writers)
        .map(|w| {
            let budget = per_writer + usize::from(w < remainder);
            let seed = config.seed ^ (0xdead + w as u64);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("writer connect");
                let mut rng = Xoshiro256::seed_from_u64(seed);
                for _ in 0..budget {
                    let u = rng.next_bounded(n) as VertexId;
                    let mut v = rng.next_bounded(n - 1) as VertexId;
                    if v >= u {
                        v += 1; // no self-loops
                    }
                    if rng.next_bool(0.65) {
                        client.insert(u, v).expect("INSERT failed");
                    } else {
                        client.delete(u, v).expect("DELETE failed");
                    }
                }
                budget as u64
            })
        })
        .collect();

    let updates_streamed: u64 = writer_handles.into_iter().map(|h| h.join().unwrap()).sum();
    // The writers saw every op acknowledged; wait for the engine to drain.
    let engine_stats = server.engine_stats();
    while engine_stats.applied.get() < updates_streamed {
        std::thread::sleep(Duration::from_micros(200));
    }
    let update_wall = update_timer.elapsed();

    done.store(true, Ordering::Release);
    let mut epochs_monotone = true;
    for h in reader_handles {
        epochs_monotone &= h.join().unwrap();
    }
    let (snapshots_audited, snapshots_valid, auditor_monotone) = auditor.join().unwrap();
    epochs_monotone &= auditor_monotone;

    let reads = read_hist.count();
    let wall = update_timer.elapsed();
    let final_epoch = server.snapshots().epoch();
    let batches = engine_stats.batches.get();
    let coalesced = engine_stats.coalesced.get();
    let pruned = engine_stats.pruned.get();
    let cover = server.shutdown();
    let final_valid = cover.is_valid();

    ServeReport {
        vertices: config.vertices,
        initial_edges,
        seed_cover,
        readers: config.readers,
        writers: config.writers,
        reads,
        reads_per_sec: reads as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        read_latency: read_hist.percentiles(),
        updates_streamed,
        update_wall,
        snapshots_audited,
        snapshots_valid,
        epochs_monotone,
        final_epoch,
        final_cover: cover.cover().len(),
        final_valid,
        batches,
        coalesced,
        pruned,
    }
}

/// Render a report as the fixed-width lines the harness prints.
pub fn format_serve_report(r: &ServeReport) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!(
        "graph     |V|={} |E|0={}  seed cover {}",
        r.vertices, r.initial_edges, r.seed_cover
    ));
    out.push(format!(
        "reads     {} requests from {} readers  {:.0} reads/sec",
        r.reads, r.readers, r.reads_per_sec
    ));
    out.push(match r.read_latency {
        Some(p) => format!("latency   {} per read", p.format_secs()),
        None => "latency   no reads completed".to_string(),
    });
    out.push(format!(
        "updates   {} streamed by {} writers in {:.3}s  {:.0} updates/sec  ({} batches, {} coalesced, {} pruned)",
        r.updates_streamed,
        r.writers,
        r.update_wall.as_secs_f64(),
        r.updates_per_sec(),
        r.batches,
        r.coalesced,
        r.pruned
    ));
    out.push(format!(
        "snapshots {}/{} sampled audits valid  epochs monotone {}  final epoch {}",
        r.snapshots_valid,
        r.snapshots_audited,
        if r.epochs_monotone { "yes" } else { "NO" },
        r.final_epoch
    ));
    out.push(format!(
        "final     cover {}  valid {}{}",
        r.final_cover,
        if r.final_valid { "yes" } else { "NO" },
        if r.healthy() { "" } else { "  ** FAILURE **" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_load_is_healthy() {
        let mut config = ServeLoadConfig::smoke();
        config.vertices = 250;
        config.initial_edges = 900;
        config.updates = 120;
        let report = run_serve(&config);
        assert!(report.healthy(), "{report:#?}");
        assert_eq!(report.updates_streamed, 120);
        assert!(report.reads > 0);
        assert!(report.read_latency.is_some());
        assert!(report.final_epoch >= 1);
        let lines = format_serve_report(&report);
        assert!(lines.iter().any(|l| l.contains("updates/sec")));
        assert!(lines.iter().any(|l| l.contains("p99")));
        assert!(!lines.iter().any(|l| l.contains("FAILURE")), "{lines:#?}");
    }
}
