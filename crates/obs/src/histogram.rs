//! A lock-free, mergeable latency histogram with fixed log2 buckets.
//!
//! Values are durations in nanoseconds; bucket `b` holds values in
//! `[2^b, 2^(b+1))` (bucket 0 additionally holds 0). Sixty-four buckets span
//! every representable `u64` nanosecond count — from sub-nanosecond to
//! ~584 years — so recording never saturates or clips. Recording is one
//! relaxed `fetch_add` on the bucket plus one on the running sum; handles are
//! cheap `Arc` clones sharing the same cells, so a histogram can be recorded
//! from many threads and read from another without locks.
//!
//! Percentiles are nearest-rank over the bucket counts with linear
//! interpolation inside the landing bucket, which guarantees the reported
//! pXX lies within the bucket bounds of the exact (sort-based) nearest-rank
//! sample — the contract the property tests in `tests/prop_obs.rs` check.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of log2 buckets (one per power of two of nanoseconds).
pub const BUCKET_COUNT: usize = 64;

/// Bucket index for a duration of `nanos` nanoseconds.
pub fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        63 - nanos.leading_zeros() as usize
    }
}

/// Inclusive lower bound of `bucket`, in nanoseconds.
pub fn bucket_lower_nanos(bucket: usize) -> u64 {
    debug_assert!(bucket < BUCKET_COUNT);
    if bucket == 0 {
        0
    } else {
        1u64 << bucket
    }
}

/// Exclusive upper bound of `bucket`, in nanoseconds (`2^64` for the last
/// bucket, hence `f64`).
pub fn bucket_upper_nanos(bucket: usize) -> f64 {
    debug_assert!(bucket < BUCKET_COUNT);
    2f64.powi(bucket as i32 + 1)
}

#[derive(Debug)]
struct HistogramCore {
    counts: [AtomicU64; BUCKET_COUNT],
    sum_nanos: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// A shareable histogram handle. `Clone` is an `Arc` clone: all clones record
/// into the same cells, which is how per-thread recorders and a reporting
/// thread share one distribution.
#[derive(Clone, Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A standalone, always-enabled histogram (not tied to a registry).
    pub fn new() -> Self {
        Histogram {
            enabled: Arc::new(AtomicBool::new(true)),
            core: Arc::new(HistogramCore::new()),
        }
    }

    /// A histogram gated by a shared enabled flag (registry-owned).
    pub(crate) fn with_enabled(enabled: Arc<AtomicBool>) -> Self {
        Histogram {
            enabled,
            core: Arc::new(HistogramCore::new()),
        }
    }

    /// Whether records are currently being counted.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record a duration.
    pub fn record(&self, d: Duration) {
        self.observe_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record a duration given in seconds; negative and non-finite values
    /// clamp to zero.
    pub fn record_secs(&self, secs: f64) {
        let nanos = if secs.is_finite() && secs > 0.0 {
            (secs * 1e9).round().min(u64::MAX as f64) as u64
        } else {
            0
        };
        self.observe_nanos(nanos);
    }

    /// Record a raw nanosecond count.
    pub fn observe_nanos(&self, nanos: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let core = &self.core;
        core.counts[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        core.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Start a timer that records on drop. Returns `None` when the histogram
    /// is disabled, so disabled hot paths skip the clock read entirely.
    #[must_use = "the timer records when the guard drops"]
    pub fn start(&self) -> Option<HistogramTimer<'_>> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        Some(HistogramTimer {
            histogram: self,
            start: Instant::now(),
        })
    }

    /// Fold another histogram's counts into this one.
    pub fn merge_from(&self, other: &Histogram) {
        let snap = other.snapshot();
        for (b, &count) in snap.counts.iter().enumerate() {
            if count > 0 {
                self.core.counts[b].fetch_add(count, Ordering::Relaxed);
            }
        }
        self.core
            .sum_nanos
            .fetch_add(snap.sum_nanos, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of the counts (individual cells
    /// are read atomically; cross-cell skew is bounded by in-flight records).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: [u64; BUCKET_COUNT] =
            std::array::from_fn(|b| self.core.counts[b].load(Ordering::Relaxed));
        HistogramSnapshot {
            counts,
            sum_nanos: self.core.sum_nanos.load(Ordering::Relaxed),
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.snapshot().count()
    }

    /// p50/p90/p99 of the recorded distribution, in seconds.
    pub fn percentiles(&self) -> Option<Percentiles> {
        self.snapshot().percentiles()
    }
}

/// An RAII timer tied to a [`Histogram`]; records the elapsed time on drop.
#[derive(Debug)]
pub struct HistogramTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        self.histogram.record(self.start.elapsed());
    }
}

/// An owned point-in-time copy of a histogram's counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKET_COUNT],
    sum_nanos: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKET_COUNT],
            sum_nanos: 0,
        }
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64; BUCKET_COUNT] {
        &self.counts
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded values, in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }

    /// Mean of the recorded values, in seconds (`None` when empty).
    pub fn mean_secs(&self) -> Option<f64> {
        let count = self.count();
        (count > 0).then(|| self.sum_secs() / count as f64)
    }

    /// Merge two snapshots (bucket-wise sum). Associative and commutative.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: [u64; BUCKET_COUNT] = std::array::from_fn(|b| self.counts[b] + other.counts[b]);
        HistogramSnapshot {
            counts,
            sum_nanos: self.sum_nanos + other.sum_nanos,
        }
    }

    /// The `p`-th percentile (0 < p <= 100) in seconds, by nearest rank over
    /// the buckets with linear interpolation inside the landing bucket.
    /// `None` when the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // Nearest rank: the smallest r in 1..=total with r/total >= p/100.
        let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (b, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if cumulative + count >= rank {
                let lower = bucket_lower_nanos(b) as f64;
                let upper = bucket_upper_nanos(b);
                let within = (rank - cumulative) as f64 / count as f64; // in (0, 1]
                return Some((lower + (upper - lower) * within) / 1e9);
            }
            cumulative += count;
        }
        unreachable!("rank is clamped to the total count")
    }

    /// p50/p90/p99 in seconds (`None` when empty).
    pub fn percentiles(&self) -> Option<Percentiles> {
        Some(Percentiles {
            p50: self.percentile(50.0)?,
            p90: self.percentile(90.0)?,
            p99: self.percentile(99.0)?,
        })
    }
}

/// Latency percentiles of a distribution, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Render as `p50 …  p90 …  p99 …` with human-scaled units.
    pub fn format_secs(&self) -> String {
        format!(
            "p50 {}  p90 {}  p99 {}",
            format_secs(self.p50),
            format_secs(self.p90),
            format_secs(self.p99)
        )
    }
}

/// Human-scaled time formatting (s / ms / µs).
pub fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.3}µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for b in 0..BUCKET_COUNT {
            assert_eq!(bucket_index(bucket_lower_nanos(b).max(1)), b);
            assert!(bucket_upper_nanos(b) > bucket_lower_nanos(b) as f64);
        }
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.percentiles().is_none());
        assert!(h.snapshot().mean_secs().is_none());
    }

    #[test]
    fn percentile_lands_in_the_value_bucket() {
        let h = Histogram::new();
        h.record(Duration::from_micros(100)); // 100_000 ns → bucket 16
        let p = h.percentiles().unwrap();
        let b = bucket_index(100_000);
        for v in [p.p50, p.p90, p.p99] {
            let nanos = v * 1e9;
            assert!(nanos > bucket_lower_nanos(b) as f64);
            assert!(nanos <= bucket_upper_nanos(b));
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.observe_nanos(i * 1000);
        }
        let p = h.percentiles().unwrap();
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99, "{p:?}");
    }

    #[test]
    fn clones_share_cells_and_merge_adds() {
        let a = Histogram::new();
        let a2 = a.clone();
        a.observe_nanos(10);
        a2.observe_nanos(20);
        assert_eq!(a.count(), 2);

        let b = Histogram::new();
        b.observe_nanos(1_000_000);
        b.merge_from(&a);
        assert_eq!(b.count(), 3);
        assert_eq!(b.snapshot().sum_nanos, 1_000_030);
    }

    #[test]
    fn record_secs_clamps_garbage() {
        let h = Histogram::new();
        h.record_secs(-1.0);
        h.record_secs(f64::NAN);
        h.record_secs(1e-6);
        assert_eq!(h.count(), 3);
        assert_eq!(h.snapshot().counts()[bucket_index(1000)], 1);
    }

    #[test]
    fn formatting_scales_units() {
        assert_eq!(format_secs(2.5), "2.500s");
        assert_eq!(format_secs(0.0025), "2.500ms");
        assert_eq!(format_secs(0.0000025), "2.500µs");
    }

    #[test]
    fn percentiles_format_scales_units() {
        let p = Percentiles {
            p50: 0.0005,
            p90: 0.002,
            p99: 1.5,
        };
        assert_eq!(p.format_secs(), "p50 500.000µs  p90 2.000ms  p99 1.500s");
    }
}
