//! A tiny hand-rolled JSON writer (the workspace builds fully offline, so no
//! serde): exactly the shapes the exporters need — objects, arrays, strings,
//! integers, finite floats — with deterministic key order. Shared by the
//! Chrome trace exporter here and the bench trajectory files in `tdb-bench`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// An unsigned integer.
    Int(u64),
    /// A finite float, rendered with up to 6 significant decimals.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a field; panics on a non-object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(fields) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
        self
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render on a single line with no whitespace — the JSONL shape the
    /// flight-recorder exports use (one event per line).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Str(s) => write_escaped(out, s),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                assert!(x.is_finite(), "json floats must be finite, got {x}");
                // Up to 6 significant decimals, trailing zeros trimmed, but
                // always a `.0` so the value round-trips as a float.
                let mut s = format!("{x:.6}");
                while s.ends_with('0') {
                    s.pop();
                }
                if s.ends_with('.') {
                    s.push('0');
                }
                out.push_str(&s);
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i)
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_objects_with_stable_order() {
        let doc = Json::obj()
            .set("b", 2u64)
            .set("a", Json::obj().set("x", 0.5).set("ok", true));
        let text = doc.render();
        let b = text.find("\"b\"").unwrap();
        let a = text.find("\"a\"").unwrap();
        assert!(b < a, "insertion order must be preserved:\n{text}");
        assert!(text.contains("\"x\": 0.5"));
        assert!(text.contains("\"ok\": true"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_trims_floats() {
        let doc = Json::obj()
            .set("quote\"tab\t", "line\nbreak")
            .set("third", 1.0 / 3.0)
            .set("whole", 2.0);
        let text = doc.render();
        assert!(text.contains("\"quote\\\"tab\\t\": \"line\\nbreak\""));
        assert!(text.contains("\"third\": 0.333333"));
        assert!(text.contains("\"whole\": 2.0"));
    }

    #[test]
    fn set_replaces_existing_keys() {
        let doc = Json::obj().set("k", 1u64).set("k", 2u64);
        assert_eq!(doc, Json::obj().set("k", 2u64));
    }

    #[test]
    fn compact_render_is_single_line() {
        let doc = Json::obj()
            .set("a", 1u64)
            .set(
                "b",
                Json::Arr(vec![Json::Bool(true), Json::Str("x\ny".into())]),
            )
            .set("c", Json::obj());
        assert_eq!(
            doc.render_compact(),
            "{\"a\":1,\"b\":[true,\"x\\ny\"],\"c\":{}}"
        );
    }

    #[test]
    fn arrays_render_with_indentation() {
        let doc = Json::obj().set(
            "items",
            Json::Arr(vec![Json::Int(1), Json::obj().set("k", "v")]),
        );
        let text = doc.render();
        assert!(text.contains("\"items\": [\n"));
        assert!(text.contains("    1,\n"));
        assert!(text.contains("\"k\": \"v\""));
        assert_eq!(Json::Arr(Vec::new()).render(), "[]\n");
    }
}
