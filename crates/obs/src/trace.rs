//! Span tracing: RAII guards writing complete events into bounded per-thread
//! ring buffers, drained to Chrome trace-event JSON (`chrome://tracing` /
//! `ui.perfetto.dev`).
//!
//! The tracer is process-global and **disabled by default** — a disabled
//! [`span`] call is one relaxed atomic load plus one thread-local read (the
//! request-correlation check) and returns `None`, so instrumented hot paths
//! pay no clock read and no allocation. When enabled, each thread records
//! into its own ring buffer (newest events win on overflow; the drop count
//! is kept), so recording never blocks another recording thread.
//!
//! Spans are request-correlated: an event records the id installed by
//! [`crate::request::begin`] on its thread (0 outside a request scope), and
//! closing spans charge their duration to the request's phase breakdown via
//! [`crate::request::record_phase`] — even while the tracer itself is off,
//! so slow-query records always carry a breakdown.

use std::borrow::Cow;
use std::cell::OnceCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_THREAD_CAPACITY: usize = 65_536;

/// One completed span: a Chrome trace "X" (complete) event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name, e.g. `solve/scan`.
    pub name: Cow<'static, str>,
    /// Start timestamp in microseconds since the tracer epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Recording thread's tracer-assigned id.
    pub tid: u64,
    /// Correlated request id ([`crate::request::current`] at close); `0`
    /// outside a request scope.
    pub request_id: u64,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

#[derive(Debug)]
struct ThreadBuf {
    tid: u64,
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Tracer {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    next_tid: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    epoch: OnceLock<Instant>,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        capacity: AtomicUsize::new(DEFAULT_THREAD_CAPACITY),
        next_tid: AtomicU64::new(1),
        threads: Mutex::new(Vec::new()),
        epoch: OnceLock::new(),
    })
}

thread_local! {
    static LOCAL: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
}

/// Turn span recording on or off (off by default).
pub fn set_enabled(on: bool) {
    tracer().enabled.store(on, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
pub fn is_enabled() -> bool {
    tracer().enabled.load(Ordering::Relaxed)
}

/// Set the per-thread ring capacity (events kept per thread before the
/// oldest are dropped). Applies to future records on every thread.
pub fn set_thread_capacity(capacity: usize) {
    tracer().capacity.store(capacity.max(1), Ordering::Relaxed);
}

/// Microseconds since the tracer epoch (the first call fixes the epoch).
pub fn now_us() -> f64 {
    let epoch = tracer().epoch.get_or_init(Instant::now);
    epoch.elapsed().as_secs_f64() * 1e6
}

/// Open a span named by a static string. Returns `None` when tracing is
/// disabled; the span records a complete event when the guard drops.
#[must_use = "the span records when the guard drops"]
pub fn span(name: &'static str) -> Option<SpanGuard> {
    span_cow(Cow::Borrowed(name))
}

/// Open a span with a runtime-built name (e.g. `solve/TDB++`).
#[must_use = "the span records when the guard drops"]
pub fn span_owned(name: String) -> Option<SpanGuard> {
    span_cow(Cow::Owned(name))
}

fn span_cow(name: Cow<'static, str>) -> Option<SpanGuard> {
    // A span is armed when the tracer records, or when a request scope is
    // active on this thread (the phase breakdown wants the timing even if
    // the trace ring doesn't) — otherwise the disabled fast path applies.
    if !is_enabled() && !crate::request::is_active() {
        return None;
    }
    Some(SpanGuard {
        name,
        start_us: now_us(),
    })
}

/// An open span; records a [`TraceEvent`] covering its lifetime on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: Cow<'static, str>,
    start_us: f64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let start_us = self.start_us;
        let dur_us = (now_us() - start_us).max(0.0);
        crate::request::record_phase(&self.name, dur_us);
        record_complete(std::mem::take(&mut self.name), start_us, dur_us);
    }
}

/// Record a complete event directly (the span guards use this; tests and
/// custom instrumentation may too). A no-op while tracing is disabled.
pub fn record_complete(name: impl Into<Cow<'static, str>>, start_us: f64, dur_us: f64) {
    let t = tracer();
    if !t.enabled.load(Ordering::Relaxed) {
        return;
    }
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(ThreadBuf {
                tid: t.next_tid.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring::default()),
            });
            t.threads
                .lock()
                .expect("tracer thread registry poisoned")
                .push(Arc::clone(&buf));
            buf
        });
        let capacity = t.capacity.load(Ordering::Relaxed).max(1);
        let mut ring = buf.ring.lock().expect("trace ring poisoned");
        while ring.events.len() >= capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        let tid = buf.tid;
        ring.events.push_back(TraceEvent {
            name: name.into(),
            start_us,
            dur_us,
            tid,
            request_id: crate::request::current(),
        });
    });
}

/// Take every buffered event from every thread, ordered by start time.
pub fn drain() -> Vec<TraceEvent> {
    let threads: Vec<Arc<ThreadBuf>> = tracer()
        .threads
        .lock()
        .expect("tracer thread registry poisoned")
        .clone();
    let mut events = Vec::new();
    for buf in threads {
        let mut ring = buf.ring.lock().expect("trace ring poisoned");
        events.extend(ring.events.drain(..));
    }
    events.sort_by(|a, b| {
        a.start_us
            .partial_cmp(&b.start_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.tid.cmp(&b.tid))
    });
    events
}

/// Total events dropped to ring overflow so far, across all threads.
pub fn dropped() -> u64 {
    let threads: Vec<Arc<ThreadBuf>> = tracer()
        .threads
        .lock()
        .expect("tracer thread registry poisoned")
        .clone();
    threads
        .iter()
        .map(|buf| buf.ring.lock().expect("trace ring poisoned").dropped)
        .sum()
}

/// Render events as a Chrome trace-event JSON document (the object form with
/// a `traceEvents` array of "X" complete events), loadable in
/// `chrome://tracing` and Perfetto. Request-correlated spans carry the id in
/// `args.request`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_json_with_events(events, &[])
}

/// [`chrome_trace_json`] plus flight-recorder events interleaved as Chrome
/// "i" (instant) events, so one export shows spans and structured events on
/// a shared timeline.
pub fn chrome_trace_json_with_events(
    spans: &[TraceEvent],
    events: &[crate::event::Event],
) -> String {
    let mut items = spans
        .iter()
        .map(|e| {
            let mut obj = Json::obj()
                .set("name", e.name.as_ref())
                .set("cat", "tdb")
                .set("ph", "X")
                .set("ts", e.start_us)
                .set("dur", e.dur_us)
                .set("pid", 1u64)
                .set("tid", e.tid);
            if e.request_id != 0 {
                obj = obj.set("args", Json::obj().set("request", e.request_id));
            }
            obj
        })
        .collect::<Vec<_>>();
    for e in events {
        let mut args = Json::obj().set("level", e.level.as_str());
        if e.request_id != 0 {
            args = args.set("request", e.request_id);
        }
        for (k, v) in &e.fields {
            args = args.set(k, Json::from(v));
        }
        items.push(
            Json::obj()
                .set("name", e.target)
                .set("cat", "tdb-event")
                .set("ph", "i")
                .set("s", "p")
                .set("ts", e.ts_us)
                .set("pid", 1u64)
                .set("tid", 0u64)
                .set("args", args),
        );
    }
    Json::obj()
        .set("traceEvents", Json::Arr(items))
        .set("displayTimeUnit", "ms")
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global; tests that flip it on serialize here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _guard = lock();
        set_enabled(false);
        drain();
        assert!(span("test/disabled").is_none());
        record_complete("test/disabled", 0.0, 1.0);
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_record_complete_events_on_drop() {
        let _guard = lock();
        set_enabled(true);
        drain();
        {
            let _outer = span("test/outer");
            let _inner = span_owned(format!("test/inner-{}", 1));
        }
        set_enabled(false);
        let events = drain();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_ref()).collect();
        assert!(names.contains(&"test/outer"), "{names:?}");
        assert!(names.contains(&"test/inner-1"), "{names:?}");
        for e in &events {
            assert!(e.dur_us >= 0.0);
        }
        // Inner starts at or after outer, and is sorted accordingly.
        let outer = events.iter().position(|e| e.name == "test/outer").unwrap();
        let inner = events
            .iter()
            .position(|e| e.name == "test/inner-1")
            .unwrap();
        assert!(events[outer].start_us <= events[inner].start_us);
    }

    #[test]
    fn chrome_json_has_the_trace_events_shape() {
        let events = vec![TraceEvent {
            name: Cow::Borrowed("solve/scan"),
            start_us: 10.5,
            dur_us: 2.25,
            tid: 3,
            request_id: 0,
        }];
        let text = chrome_trace_json(&events);
        assert!(text.contains("\"traceEvents\": ["));
        assert!(text.contains("\"name\": \"solve/scan\""));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"ts\": 10.5"));
        assert!(text.contains("\"dur\": 2.25"));
        assert!(text.contains("\"displayTimeUnit\": \"ms\""));
        assert!(
            !text.contains("\"request\""),
            "uncorrelated spans omit args"
        );
    }

    #[test]
    fn chrome_json_interleaves_spans_and_instant_events() {
        let spans = vec![TraceEvent {
            name: Cow::Borrowed("serve/breakers"),
            start_us: 5.0,
            dur_us: 1.0,
            tid: 2,
            request_id: 11,
        }];
        let events = vec![crate::event::Event {
            seq: 1,
            level: crate::event::Level::Warn,
            ts_us: 5.5,
            target: "serve/slow_query",
            request_id: 11,
            fields: vec![("verb", crate::event::Value::from("BREAKERS?"))],
        }];
        let text = chrome_trace_json_with_events(&spans, &events);
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"ph\": \"i\""));
        assert!(text.contains("\"name\": \"serve/slow_query\""));
        assert!(text.contains("\"request\": 11"));
        assert!(text.contains("\"verb\": \"BREAKERS?\""));
    }

    #[test]
    fn spans_inside_a_request_scope_carry_the_id_and_feed_the_breakdown() {
        let _guard = lock();
        set_enabled(true);
        drain();
        {
            let _scope = crate::request::begin(23);
            let _span = span("test/correlated");
        }
        set_enabled(false);
        let events = drain();
        let e = events
            .iter()
            .find(|e| e.name == "test/correlated")
            .expect("span recorded");
        assert_eq!(e.request_id, 23);
    }

    #[test]
    fn request_scope_arms_spans_even_with_the_tracer_off() {
        let _guard = lock();
        set_enabled(false);
        drain();
        let _scope = crate::request::begin(31);
        {
            let _span = span("test/phase_only");
            assert!(_span.is_some(), "request scope must arm the span");
        }
        assert!(drain().is_empty(), "tracer off: ring stays empty");
        let phases = crate::request::take_breakdown();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "test/phase_only");
        assert_eq!(phases[0].count, 1);
    }
}
