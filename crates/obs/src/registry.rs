//! A named-metric registry: counters, gauges, and histograms addressed by
//! Prometheus-style names, plus the text exposition renderer.
//!
//! Handles returned by [`Registry::counter`] / [`Registry::gauge`] /
//! [`Registry::histogram`] are cheap `Arc` clones of the registered cells, so
//! hot paths cache a handle once (see the `counter!` / `gauge!` /
//! `histogram!` macros in the crate root) and never touch the registry lock
//! again.
//!
//! The enabled flag gates **histograms only** (they are the metrics that cost
//! a clock read per record); counters and gauges always count, because
//! correctness-level consumers (backpressure gauges, applied-op counters the
//! serve engine's clients spin on) must not change behavior with
//! observability off.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::{bucket_upper_nanos, Histogram};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, live counts).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Add `n`.
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    LabeledGauge(Vec<(String, String)>, Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) | Metric::LabeledGauge(..) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct RegistryInner {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A registry of named metrics. `Clone` shares the same underlying map, so a
/// registry can be handed to several components that register into one
/// exposition.
#[derive(Clone, Debug)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: Arc::new(AtomicBool::new(true)),
                metrics: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Whether this registry's histograms record (counters/gauges always do).
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable histogram recording for every histogram created by
    /// this registry, past and future. The disabled fast path is one relaxed
    /// load per record/timer-start — the crate's overhead contract.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Get or create the counter `name`. Panics if `name` is already
    /// registered as a different kind, or is not a valid metric name.
    pub fn counter(&self, name: &str) -> Counter {
        match self.metric(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.metric(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create a gauge rendered with a fixed label set, e.g.
    /// `tdb_build_info{version="0.1.0",features=""} 1`. Label *names* must be
    /// valid metric identifiers; label *values* are arbitrary and escaped per
    /// the Prometheus text format on render. The labels of the first
    /// registration win; later calls return the same cell.
    pub fn labeled_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        for (k, _) in labels {
            validate_name(k);
        }
        let create = || {
            Metric::LabeledGauge(
                labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                Gauge::default(),
            )
        };
        match self.metric(name, create) {
            Metric::LabeledGauge(_, g) => g,
            other => panic!("metric {name:?} is a {}, not a labeled gauge", other.kind()),
        }
    }

    /// Get or create the histogram `name` (gated by this registry's enabled
    /// flag).
    pub fn histogram(&self, name: &str) -> Histogram {
        let enabled = Arc::clone(&self.inner.enabled);
        match self.metric(name, move || {
            Metric::Histogram(Histogram::with_enabled(enabled))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn metric(&self, name: &str, create: impl FnOnce() -> Metric) -> Metric {
        validate_name(name);
        let mut metrics = self.inner.metrics.lock().expect("metric registry poisoned");
        metrics
            .entry(name.to_string())
            .or_insert_with(create)
            .clone()
    }

    /// Render every registered metric in Prometheus text exposition format,
    /// in sorted name order. Histograms emit cumulative `_bucket{le="..."}`
    /// series (bounds in seconds) plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.inner.metrics.lock().expect("metric registry poisoned");
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::LabeledGauge(labels, g) => {
                    let _ = write!(out, "{name}{{");
                    for (i, (k, v)) in labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
                    }
                    let _ = writeln!(out, "}} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (b, &count) in snap.counts().iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        cumulative += count;
                        let le = bucket_upper_nanos(b) / 1e9;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count());
                    let _ = writeln!(out, "{name}_sum {}", snap.sum_secs());
                    let _ = writeln!(out, "{name}_count {}", snap.count());
                }
            }
        }
        out
    }
}

/// Escape a Prometheus label value per the text exposition format:
/// backslash, double quote, and line feed become `\\`, `\"`, and `\n`.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Register the build-info and process start-time metrics into `registry`:
/// `tdb_build_info{version=...,features=...} 1` and
/// `tdb_process_start_time_seconds` (Unix seconds, captured process-wide on
/// the first call). Idempotent — servers call this once at startup.
pub fn register_process_metrics(registry: &Registry, version: &str, features: &str) {
    registry
        .labeled_gauge(
            "tdb_build_info",
            &[("version", version), ("features", features)],
        )
        .set(1);
    static START_UNIX_SECS: OnceLock<i64> = OnceLock::new();
    let start = *START_UNIX_SECS.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0)
    });
    registry.gauge("tdb_process_start_time_seconds").set(start);
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok = match chars.next() {
        Some(c) => {
            (c.is_ascii_alphabetic() || c == '_' || c == ':')
                && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        None => false,
    };
    assert!(
        ok,
        "invalid metric name {name:?} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
    );
}

/// The process-wide registry used by the `counter!` / `gauge!` / `histogram!`
/// macros — where the solver, cycle-searcher, and dynamic-maintenance
/// instrumentation lands. Enabled by default.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn handles_share_cells() {
        let reg = Registry::new();
        let a = reg.counter("test_total");
        let b = reg.counter("test_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);

        let g = reg.gauge("test_depth");
        g.add(5);
        reg.gauge("test_depth").dec();
        assert_eq!(g.get(), 4);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("test_total");
        let _ = reg.gauge("test_total");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_panic() {
        let _ = Registry::new().counter("has space");
    }

    #[test]
    fn disabling_gates_histograms_but_not_counters() {
        let reg = Registry::new();
        let h = reg.histogram("test_seconds");
        let c = reg.counter("test_total");
        reg.set_enabled(false);
        h.record(Duration::from_millis(1));
        assert!(h.start().is_none(), "disabled timer must skip the clock");
        c.inc();
        assert_eq!(h.count(), 0);
        assert_eq!(c.get(), 1);
        reg.set_enabled(true);
        h.record(Duration::from_millis(1));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn prometheus_exposition_has_types_buckets_and_sorted_names() {
        let reg = Registry::new();
        reg.counter("zz_total").add(7);
        reg.gauge("aa_depth").set(3);
        let h = reg.histogram("mm_seconds");
        h.observe_nanos(1_500); // bucket [1024, 2048)
        h.observe_nanos(1_600);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE zz_total counter\nzz_total 7\n"));
        assert!(text.contains("# TYPE aa_depth gauge\naa_depth 3\n"));
        assert!(text.contains("# TYPE mm_seconds histogram\n"));
        assert!(text.contains("mm_seconds_bucket{le=\"0.000002048\"} 2"));
        assert!(text.contains("mm_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("mm_seconds_count 2"));
        let aa = text.find("# TYPE aa_depth").unwrap();
        let mm = text.find("# TYPE mm_seconds").unwrap();
        let zz = text.find("# TYPE zz_total").unwrap();
        assert!(aa < mm && mm < zz, "names must render sorted:\n{text}");
    }

    #[test]
    fn label_values_escape_quotes_backslashes_and_newlines() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(
            escape_label_value("\\\"\n"),
            "\\\\\\\"\\n",
            "all three escapes compose"
        );
    }

    #[test]
    fn labeled_gauge_renders_escaped_single_line_series() {
        let reg = Registry::new();
        reg.labeled_gauge(
            "test_info",
            &[("version", "1.0\"x"), ("features", "a\nb\\c")],
        )
        .set(1);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE test_info gauge\n"));
        assert!(
            text.contains("test_info{version=\"1.0\\\"x\",features=\"a\\nb\\\\c\"} 1\n"),
            "escaped series must stay on one physical line:\n{text}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn labeled_gauge_validates_label_names() {
        let _ = Registry::new().labeled_gauge("test_info", &[("bad name", "v")]);
    }

    #[test]
    fn process_metrics_register_build_info_and_start_time() {
        let reg = Registry::new();
        register_process_metrics(&reg, "9.9.9", "foo,bar");
        register_process_metrics(&reg, "9.9.9", "foo,bar"); // idempotent
        let text = reg.render_prometheus();
        assert!(text.contains("tdb_build_info{version=\"9.9.9\",features=\"foo,bar\"} 1\n"));
        let start_line = text
            .lines()
            .find(|l| l.starts_with("tdb_process_start_time_seconds "))
            .expect("start-time gauge rendered");
        let secs: i64 = start_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(secs > 1_600_000_000, "unix seconds, not zero: {secs}");
    }

    #[test]
    fn global_macros_cache_static_handles() {
        let c = crate::counter!("tdb_obs_selftest_total");
        c.inc();
        let again = crate::counter!("tdb_obs_selftest_total");
        // Two macro expansions: distinct statics, same underlying cell.
        assert!(again.get() >= 1);
        let h = crate::histogram!("tdb_obs_selftest_seconds");
        h.observe_nanos(42);
        assert!(h.count() >= 1);
        let g = crate::gauge!("tdb_obs_selftest_depth");
        g.inc();
        g.dec();
    }
}
