//! Thread-scoped request correlation: a current-request cell that stamps
//! spans and flight-recorder events with the id of the protocol request being
//! served, plus a per-request phase breakdown accumulated from closing spans.
//!
//! The serve front end assigns every accepted protocol line a request id and
//! installs it with [`begin`]; everything recorded on that thread until the
//! returned [`RequestScope`] drops — trace spans, `event!` records — carries
//! the id, so one slow `BREAKERS?` can be reconstructed end to end from the
//! drained trace. Outside a request scope [`current`] is `0` and the cost of
//! the integration is a thread-local read, so solver hot paths running on
//! non-serving threads are unaffected.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};

/// Upper bound on distinct phase names kept per request; extra names are
/// folded into the count of [`PHASE_OVERFLOW`].
const MAX_PHASES: usize = 32;

/// Synthetic phase name charged when a request exceeds [`MAX_PHASES`]
/// distinct span names.
pub const PHASE_OVERFLOW: &str = "other";

/// One aggregated phase of a request: span name, total microseconds, count.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Span name (e.g. `serve/breakers`).
    pub name: Cow<'static, str>,
    /// Total time spent in spans with this name, microseconds.
    pub total_us: f64,
    /// Number of spans folded into `total_us`.
    pub count: u64,
}

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    static BREAKDOWN: RefCell<Vec<Phase>> = const { RefCell::new(Vec::new()) };
}

/// The request id active on this thread, or `0` when none is.
#[inline]
pub fn current() -> u64 {
    CURRENT.with(|c| c.get())
}

/// Whether a request scope is active on this thread.
#[inline]
pub fn is_active() -> bool {
    current() != 0
}

/// Enter a request scope: spans and events recorded on this thread carry
/// `id` until the returned guard drops. Passing `0` clears the scope.
/// Scopes nest (the previous id is restored on drop); the phase breakdown
/// is shared across the nest.
#[must_use = "the request scope ends when the guard drops"]
pub fn begin(id: u64) -> RequestScope {
    let prev = CURRENT.with(|c| c.replace(id));
    if prev == 0 {
        BREAKDOWN.with(|b| b.borrow_mut().clear());
    }
    RequestScope { prev }
}

/// An active request scope; restores the previously active id on drop.
#[derive(Debug)]
pub struct RequestScope {
    prev: u64,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Charge `dur_us` microseconds to phase `name` of the active request.
/// Closing trace spans call this automatically; a no-op outside a scope.
//
// `&Cow` (not `&str`): the phase table stores `Cow<'static, str>`, and only
// the *first* occurrence of a name must clone — `&str` would force every
// call to re-own dynamically named spans, `Cow` by value would clone even
// when the entry already exists.
#[allow(clippy::ptr_arg)]
pub fn record_phase(name: &Cow<'static, str>, dur_us: f64) {
    if !is_active() {
        return;
    }
    BREAKDOWN.with(|b| {
        let mut phases = b.borrow_mut();
        if let Some(p) = phases.iter_mut().find(|p| p.name == *name) {
            p.total_us += dur_us;
            p.count += 1;
        } else if phases.len() < MAX_PHASES {
            phases.push(Phase {
                name: name.clone(),
                total_us: dur_us,
                count: 1,
            });
        } else if let Some(p) = phases.iter_mut().find(|p| p.name == PHASE_OVERFLOW) {
            p.total_us += dur_us;
            p.count += 1;
        } else {
            // First spill past MAX_PHASES distinct names: add the bucket.
            phases.push(Phase {
                name: Cow::Borrowed(PHASE_OVERFLOW),
                total_us: dur_us,
                count: 1,
            });
        }
    });
}

/// Take (and clear) the phase breakdown accumulated on this thread for the
/// active request, ordered by descending total time.
pub fn take_breakdown() -> Vec<Phase> {
    BREAKDOWN.with(|b| {
        let mut phases = std::mem::take(&mut *b.borrow_mut());
        phases.sort_by(|a, b| {
            b.total_us
                .partial_cmp(&a.total_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        phases
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_sets_and_restores_the_id() {
        assert_eq!(current(), 0);
        assert!(!is_active());
        {
            let _outer = begin(7);
            assert_eq!(current(), 7);
            {
                let _inner = begin(9);
                assert_eq!(current(), 9);
            }
            assert_eq!(current(), 7);
        }
        assert_eq!(current(), 0);
    }

    #[test]
    fn phases_aggregate_by_name_and_sort_by_total() {
        let _scope = begin(3);
        record_phase(&Cow::Borrowed("a"), 1.0);
        record_phase(&Cow::Borrowed("b"), 10.0);
        record_phase(&Cow::Borrowed("a"), 2.0);
        let phases = take_breakdown();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "b");
        assert_eq!(phases[1].name, "a");
        assert_eq!(phases[1].total_us, 3.0);
        assert_eq!(phases[1].count, 2);
        assert!(take_breakdown().is_empty(), "take must clear");
    }

    #[test]
    fn phases_outside_a_scope_are_dropped() {
        record_phase(&Cow::Borrowed("ignored"), 5.0);
        let _scope = begin(1);
        assert!(take_breakdown().is_empty());
    }

    #[test]
    fn phase_overflow_folds_into_other() {
        let _scope = begin(2);
        for i in 0..(MAX_PHASES + 5) {
            record_phase(&Cow::Owned(format!("phase-{i}")), 1.0);
        }
        let phases = take_breakdown();
        assert_eq!(phases.len(), MAX_PHASES + 1);
        let other = phases.iter().find(|p| p.name == PHASE_OVERFLOW).unwrap();
        assert_eq!(other.count, 5);
    }

    #[test]
    fn fresh_scope_clears_stale_breakdown() {
        {
            let _scope = begin(4);
            record_phase(&Cow::Borrowed("stale"), 1.0);
            // Dropped without taking the breakdown.
        }
        let _scope = begin(5);
        assert!(take_breakdown().is_empty());
    }
}
