//! The flight recorder: a bounded ring of structured events (level,
//! monotonic timestamp, static target, small key-value payload) cheap enough
//! to leave on in production.
//!
//! The recorder follows the span tracer's discipline exactly: it is
//! process-global, **disabled by default**, and a disabled [`crate::event!`]
//! is a single relaxed atomic load — no clock read, no payload allocation.
//! When enabled, each thread records into its own bounded ring (oldest
//! events are dropped on overflow, with an exact per-ring drop count), so a
//! recording thread never blocks another and a concurrent [`drain`] never
//! blocks recording for longer than one ring's lock.
//!
//! Events drain to JSONL ([`jsonl`]) and to the Chrome trace writer as
//! instant events ([`crate::trace::chrome_trace_json_with_events`]), and
//! carry the active request id from [`crate::request`] so slow-query
//! records line up with the spans of the request that produced them.

use std::borrow::Cow;
use std::cell::OnceCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_THREAD_CAPACITY: usize = 8_192;

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics.
    Debug,
    /// Notable but expected state changes.
    Info,
    /// Something is off but the process copes.
    Warn,
    /// A request or maintenance action failed.
    Error,
}

impl Level {
    /// Lower-case name, as rendered in JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A small payload value attached to an event field.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Finite float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text (static or owned).
    Str(Cow<'static, str>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Value {
        Value::Str(Cow::Borrowed(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(Cow::Owned(v))
    }
}

impl From<&Value> for Json {
    fn from(v: &Value) -> Json {
        match v {
            Value::U64(x) => Json::Int(*x),
            Value::I64(x) => {
                if *x >= 0 {
                    Json::Int(*x as u64)
                } else {
                    Json::Num(*x as f64)
                }
            }
            Value::F64(x) => Json::Num(*x),
            Value::Bool(b) => Json::Bool(*b),
            Value::Str(s) => Json::Str(s.clone().into_owned()),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Process-wide record sequence number (total order across threads).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Microseconds since the tracer epoch ([`crate::trace::now_us`]).
    pub ts_us: f64,
    /// Static event target, e.g. `serve/slow_query`.
    pub target: &'static str,
    /// Correlated request id ([`crate::request::current`]); `0` when the
    /// event was recorded outside a request scope.
    pub request_id: u64,
    /// Key-value payload.
    pub fields: Vec<(&'static str, Value)>,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

#[derive(Debug)]
struct ThreadBuf {
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Recorder {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    next_seq: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        enabled: AtomicBool::new(false),
        capacity: AtomicUsize::new(DEFAULT_THREAD_CAPACITY),
        next_seq: AtomicU64::new(1),
        threads: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static LOCAL: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
}

/// Turn event recording on or off (off by default).
pub fn set_enabled(on: bool) {
    recorder().enabled.store(on, Ordering::Relaxed);
}

/// Whether events are currently recorded — the `event!` macro's one relaxed
/// load on the disabled fast path.
#[inline]
pub fn is_enabled() -> bool {
    recorder().enabled.load(Ordering::Relaxed)
}

/// Set the per-thread ring capacity (events kept per thread before the
/// oldest are dropped). Applies to future records on every thread.
pub fn set_thread_capacity(capacity: usize) {
    recorder()
        .capacity
        .store(capacity.max(1), Ordering::Relaxed);
}

/// Record one event. Prefer the [`crate::event!`] macro, which skips the
/// payload construction entirely while the recorder is disabled.
pub fn record(level: Level, target: &'static str, fields: Vec<(&'static str, Value)>) {
    let r = recorder();
    if !r.enabled.load(Ordering::Relaxed) {
        return;
    }
    let event = Event {
        seq: r.next_seq.fetch_add(1, Ordering::Relaxed),
        level,
        ts_us: crate::trace::now_us(),
        target,
        request_id: crate::request::current(),
        fields,
    };
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(ThreadBuf {
                ring: Mutex::new(Ring::default()),
            });
            r.threads
                .lock()
                .expect("event thread registry poisoned")
                .push(Arc::clone(&buf));
            buf
        });
        let capacity = r.capacity.load(Ordering::Relaxed).max(1);
        let mut ring = buf.ring.lock().expect("event ring poisoned");
        while ring.events.len() >= capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    });
}

fn collect(consume: bool) -> Vec<Event> {
    let threads: Vec<Arc<ThreadBuf>> = recorder()
        .threads
        .lock()
        .expect("event thread registry poisoned")
        .clone();
    let mut events = Vec::new();
    for buf in threads {
        let mut ring = buf.ring.lock().expect("event ring poisoned");
        if consume {
            events.extend(ring.events.drain(..));
        } else {
            events.extend(ring.events.iter().cloned());
        }
    }
    events.sort_by_key(|e| e.seq);
    events
}

/// Take every buffered event from every thread, in record order.
pub fn drain() -> Vec<Event> {
    collect(true)
}

/// Copy the buffered events without clearing them (the `GET /events` HTTP
/// endpoint uses this so scraping doesn't race post-mortem drains).
pub fn recent() -> Vec<Event> {
    collect(false)
}

/// Total events dropped to ring overflow so far, across all threads. Drops
/// survive [`drain`]; the count only moves forward.
pub fn dropped() -> u64 {
    let threads: Vec<Arc<ThreadBuf>> = recorder()
        .threads
        .lock()
        .expect("event thread registry poisoned")
        .clone();
    threads
        .iter()
        .map(|buf| buf.ring.lock().expect("event ring poisoned").dropped)
        .sum()
}

/// Render events as JSON Lines: one compact object per event with `seq`,
/// `ts_us`, `level`, `target`, `request` (when correlated), and the payload
/// fields nested under `fields`.
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let mut fields = Json::obj();
        for (k, v) in &e.fields {
            fields = fields.set(k, Json::from(v));
        }
        let mut obj = Json::obj()
            .set("seq", e.seq)
            .set("ts_us", e.ts_us)
            .set("level", e.level.as_str())
            .set("target", e.target);
        if e.request_id != 0 {
            obj = obj.set("request", e.request_id);
        }
        out.push_str(&obj.set("fields", fields).render_compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests that flip it on serialize here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = lock();
        set_enabled(false);
        drain();
        record(Level::Info, "test/off", vec![("k", Value::U64(1))]);
        crate::event!(Level::Info, "test/off", k = 2u64);
        assert!(drain().is_empty());
    }

    #[test]
    fn events_carry_payload_and_sequence() {
        let _guard = lock();
        set_enabled(true);
        drain();
        crate::event!(
            Level::Warn,
            "test/payload",
            n = 41u64,
            name = "x",
            ratio = 0.5,
            ok = true
        );
        crate::event!(Level::Debug, "test/payload2");
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 2);
        assert!(events[0].seq < events[1].seq);
        assert_eq!(events[0].level, Level::Warn);
        assert_eq!(events[0].target, "test/payload");
        assert_eq!(events[0].request_id, 0);
        assert_eq!(events[0].fields[0], ("n", Value::U64(41)));
        assert_eq!(
            events[0].fields[1],
            ("name", Value::Str(Cow::Borrowed("x")))
        );
        assert!(events[1].fields.is_empty());
    }

    #[test]
    fn recent_does_not_consume_and_drops_are_exact() {
        let _guard = lock();
        set_enabled(true);
        drain();
        let before = dropped();
        set_thread_capacity(4);
        for i in 0..10u64 {
            crate::event!(Level::Info, "test/overflow", i = i);
        }
        let peek = recent();
        let mine: Vec<&Event> = peek
            .iter()
            .filter(|e| e.target == "test/overflow")
            .collect();
        assert_eq!(mine.len(), 4, "ring keeps the newest `capacity` events");
        // Newest-in-order: the survivors are the last four, in record order.
        let is: Vec<u64> = mine
            .iter()
            .map(|e| match e.fields[0].1 {
                Value::U64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(is, vec![6, 7, 8, 9]);
        assert_eq!(dropped() - before, 6, "exactly the overflowed events count");
        let drained = drain();
        assert!(drained.iter().any(|e| e.target == "test/overflow"));
        assert!(drain().is_empty(), "drain consumes");
        set_thread_capacity(DEFAULT_THREAD_CAPACITY);
        set_enabled(false);
    }

    #[test]
    fn events_pick_up_the_active_request_id() {
        let _guard = lock();
        set_enabled(true);
        drain();
        {
            let _scope = crate::request::begin(17);
            crate::event!(Level::Info, "test/correlated");
        }
        crate::event!(Level::Info, "test/uncorrelated");
        set_enabled(false);
        let events = drain();
        let by_target = |t: &str| events.iter().find(|e| e.target == t).unwrap();
        assert_eq!(by_target("test/correlated").request_id, 17);
        assert_eq!(by_target("test/uncorrelated").request_id, 0);
    }

    #[test]
    fn drop_counter_export_is_monotone_and_idempotent() {
        let _guard = lock();
        // Force at least one event drop on a tiny ring.
        set_enabled(true);
        drain();
        set_thread_capacity(1);
        crate::event!(Level::Debug, "test/drop1");
        crate::event!(Level::Debug, "test/drop2");
        set_thread_capacity(DEFAULT_THREAD_CAPACITY);
        set_enabled(false);
        drain();

        crate::export_drop_counters();
        let c = crate::global().counter("tdb_obs_events_dropped_total");
        let first = c.get();
        assert!(first >= 1, "at least the forced drop is exported");
        crate::export_drop_counters();
        assert_eq!(c.get(), first, "re-export without new drops adds nothing");
    }

    #[test]
    fn jsonl_renders_one_compact_line_per_event() {
        let events = vec![Event {
            seq: 3,
            level: Level::Error,
            ts_us: 12.5,
            target: "serve/slow_query",
            request_id: 9,
            fields: vec![
                ("verb", Value::Str(Cow::Borrowed("BREAKERS?"))),
                ("n", Value::U64(2)),
            ],
        }];
        let text = jsonl(&events);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"level\":\"error\""));
        assert!(text.contains("\"target\":\"serve/slow_query\""));
        assert!(text.contains("\"request\":9"));
        assert!(text.contains("\"verb\":\"BREAKERS?\""));
        assert!(text.ends_with('\n'));
    }
}
