//! `tdb-obs` — zero-dependency observability for the TDB workspace: a named
//! metrics registry (counters, gauges, log2 latency histograms), RAII trace
//! spans drained to Chrome trace-event JSON, a structured-event flight
//! recorder, thread-scoped request correlation, and a Prometheus-style text
//! exposition renderer.
//!
//! # Overhead contract
//!
//! Instrumentation in solver and serve hot paths must be free to leave
//! compiled in. The crate guarantees:
//!
//! * **Disabled fast path.** With a registry disabled
//!   ([`Registry::set_enabled`]`(false)`) a histogram record or timer start
//!   is a single relaxed atomic load — no clock read, no allocation. The
//!   tracer and the flight recorder are disabled by default: a disabled
//!   [`trace::span`] is one relaxed load plus one thread-local read (the
//!   request-correlation check) returning `None`, and a disabled [`event!`]
//!   is one relaxed load that skips the payload construction entirely.
//! * **Enabled cost.** A histogram record is two relaxed `fetch_add`s; a
//!   timer adds one monotonic clock read at start and one at drop. Counters
//!   and gauges are always a single relaxed `fetch_add` (they are *not*
//!   gated, because engine correctness counters double as metrics).
//! * **Measured budget.** End-to-end instrumentation overhead on the
//!   standard TDB++ scenario stays below 2% with the registry *and* the
//!   flight recorder enabled; `experiments bench` measures this and records
//!   it in the `BENCH_<tag>.json` trajectory, and `cargo bench -p tdb-bench
//!   --bench observability` reports the per-primitive costs.
//!
//! # Pieces
//!
//! * [`Registry`] / [`global()`] — named metrics; hot paths cache handles via
//!   the [`counter!`], [`gauge!`] and [`histogram!`] macros.
//! * [`Histogram`] — lock-free fixed-bucket log2 latency histogram with
//!   nearest-rank [`Percentiles`]; also usable standalone (the bench harness
//!   records batch and read latencies into one).
//! * [`trace`] — span guards, per-thread ring buffers,
//!   [`trace::chrome_trace_json`] for `chrome://tracing`.
//! * [`event`] — the flight recorder: bounded rings of structured events
//!   recorded by the [`event!`] macro, drained to JSONL or interleaved into
//!   the Chrome trace ([`trace::chrome_trace_json_with_events`]).
//! * [`request`] — thread-scoped request ids stamping spans and events, plus
//!   the per-request phase breakdown behind `tdb-serve`'s slow-query log.
//! * [`Registry::render_prometheus`] — text exposition, served by `tdb-serve`
//!   under the `METRICS` protocol verb and `GET /metrics`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod histogram;
pub mod json;
pub mod registry;
pub mod request;
pub mod trace;

pub use event::Level;
pub use histogram::{format_secs, Histogram, HistogramSnapshot, HistogramTimer, Percentiles};
pub use json::Json;
pub use registry::{global, Counter, Gauge, Registry};

/// Raise the global-registry counters `tdb_obs_trace_dropped_total` and
/// `tdb_obs_events_dropped_total` to the rings' current overflow-drop totals,
/// so silent telemetry loss is itself observable. Exposition paths (the
/// `METRICS` verb, `GET /metrics`) call this just before rendering.
pub fn export_drop_counters() {
    for (name, total) in [
        ("tdb_obs_trace_dropped_total", trace::dropped()),
        ("tdb_obs_events_dropped_total", event::dropped()),
    ] {
        let counter = global().counter(name);
        let seen = counter.get();
        if total > seen {
            counter.add(total - seen);
        }
    }
}

/// A `&'static` [`Counter`] in the [`global()`] registry, resolved once per
/// call site: `counter!("tdb_solves_total").inc()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().counter($name))
    }};
}

/// A `&'static` [`Gauge`] in the [`global()`] registry, resolved once per
/// call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// A `&'static` [`Histogram`] in the [`global()`] registry, resolved once per
/// call site: `let _t = histogram!("tdb_solve_scan_seconds").start();`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// Record a structured event into the flight recorder:
/// `event!(Level::Warn, "serve/slow_query", verb = "BREAKERS?", latency_us = 1500u64)`.
///
/// Field values go through [`event::Value::from`] (unsigned/signed integers,
/// floats, bools, `&'static str`, `String`). While the recorder is disabled
/// the whole call is one relaxed atomic load — field expressions are not
/// evaluated.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        if $crate::event::is_enabled() {
            $crate::event::record(
                $level,
                $target,
                ::std::vec![$((stringify!($key), $crate::event::Value::from($value))),*],
            );
        }
    }};
}
