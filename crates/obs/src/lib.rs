//! `tdb-obs` — zero-dependency observability for the TDB workspace: a named
//! metrics registry (counters, gauges, log2 latency histograms), RAII trace
//! spans drained to Chrome trace-event JSON, and a Prometheus-style text
//! exposition renderer.
//!
//! # Overhead contract
//!
//! Instrumentation in solver and serve hot paths must be free to leave
//! compiled in. The crate guarantees:
//!
//! * **Disabled fast path.** With a registry disabled
//!   ([`Registry::set_enabled`]`(false)`) a histogram record or timer start
//!   is a single relaxed atomic load — no clock read, no allocation. The
//!   tracer is disabled by default and a disabled [`trace::span`] is likewise
//!   one relaxed load returning `None`.
//! * **Enabled cost.** A histogram record is two relaxed `fetch_add`s; a
//!   timer adds one monotonic clock read at start and one at drop. Counters
//!   and gauges are always a single relaxed `fetch_add` (they are *not*
//!   gated, because engine correctness counters double as metrics).
//! * **Measured budget.** End-to-end instrumentation overhead on the
//!   standard TDB++ scenario stays below 2%; `experiments bench` measures
//!   this (registry disabled vs enabled) and records it in the
//!   `BENCH_<tag>.json` trajectory, and `cargo bench -p tdb-bench --bench
//!   observability` reports the per-primitive costs.
//!
//! # Pieces
//!
//! * [`Registry`] / [`global()`] — named metrics; hot paths cache handles via
//!   the [`counter!`], [`gauge!`] and [`histogram!`] macros.
//! * [`Histogram`] — lock-free fixed-bucket log2 latency histogram with
//!   nearest-rank [`Percentiles`]; also usable standalone (the bench harness
//!   records batch and read latencies into one).
//! * [`trace`] — span guards, per-thread ring buffers,
//!   [`trace::chrome_trace_json`] for `chrome://tracing`.
//! * [`Registry::render_prometheus`] — text exposition, served by `tdb-serve`
//!   under the `METRICS` protocol verb.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod registry;
pub mod trace;

pub use histogram::{format_secs, Histogram, HistogramSnapshot, HistogramTimer, Percentiles};
pub use json::Json;
pub use registry::{global, Counter, Gauge, Registry};

/// A `&'static` [`Counter`] in the [`global()`] registry, resolved once per
/// call site: `counter!("tdb_solves_total").inc()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().counter($name))
    }};
}

/// A `&'static` [`Gauge`] in the [`global()`] registry, resolved once per
/// call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// A `&'static` [`Histogram`] in the [`global()`] registry, resolved once per
/// call site: `let _t = histogram!("tdb_solve_scan_seconds").start();`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().histogram($name))
    }};
}
