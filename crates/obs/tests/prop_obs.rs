//! Property tests for the observability primitives (the workspace builds
//! fully offline, so the generator is a small inline xorshift instead of
//! proptest):
//!
//! * histogram percentiles bracket the exact sort-based nearest-rank value
//!   (same log2 bucket) on random samples,
//! * merge is associative and commutative,
//! * concurrent records lose nothing,
//! * the span ring buffer keeps the newest events on overflow, drains in
//!   order, and survives concurrent recording.

use std::sync::Mutex;
use std::time::Duration;

use tdb_obs::histogram::{bucket_index, bucket_lower_nanos, bucket_upper_nanos};
use tdb_obs::{trace, Histogram};

/// xorshift* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A latency-shaped sample: random magnitude (2^0..2^39 ns), random
    /// mantissa — exercises many buckets, like real mixed workloads.
    fn next_latency_nanos(&mut self) -> u64 {
        let magnitude = self.next_u64() % 40;
        let base = 1u64 << magnitude;
        base + self.next_u64() % base.max(1)
    }
}

/// Exact nearest-rank percentile of raw samples (the definition the
/// histogram approximates bucket-wise).
fn exact_nearest_rank(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len();
    let idx = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[idx - 1]
}

#[test]
fn percentiles_bracket_exact_nearest_rank() {
    for seed in 1..=20u64 {
        let mut rng = Rng::new(seed * 7919);
        let n = 1 + (rng.next_u64() % 500) as usize;
        let mut samples = Vec::with_capacity(n);
        let h = Histogram::new();
        for _ in 0..n {
            let nanos = rng.next_latency_nanos();
            samples.push(nanos);
            h.observe_nanos(nanos);
        }
        samples.sort_unstable();
        let p = h.percentiles().expect("non-empty histogram");
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99, "seed {seed}: {p:?}");
        for (pct, approx) in [(50.0, p.p50), (90.0, p.p90), (99.0, p.p99)] {
            let exact = exact_nearest_rank(&samples, pct);
            let bucket = bucket_index(exact);
            let approx_nanos = approx * 1e9;
            assert!(
                approx_nanos >= bucket_lower_nanos(bucket) as f64
                    && approx_nanos <= bucket_upper_nanos(bucket),
                "seed {seed}: p{pct} = {approx_nanos}ns outside bucket {bucket} of exact {exact}ns"
            );
        }
    }
}

#[test]
fn merge_is_associative_and_commutative() {
    for seed in 1..=10u64 {
        let mut rng = Rng::new(seed * 104_729);
        let make = |rng: &mut Rng| {
            let h = Histogram::new();
            for _ in 0..(rng.next_u64() % 200) {
                h.observe_nanos(rng.next_latency_nanos());
            }
            h.snapshot()
        };
        let (a, b, c) = (make(&mut rng), make(&mut rng), make(&mut rng));
        assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)), "assoc");
        assert_eq!(a.merged(&b), b.merged(&a), "commut");
        assert_eq!(a.merged(&b).count(), a.count() + b.count());
    }
}

#[test]
fn concurrent_records_lose_nothing() {
    let h = Histogram::new();
    let threads = 4;
    let per_thread = 10_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..per_thread {
                    h.observe_nanos(t * per_thread + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count(), threads * per_thread);
    let expected_sum: u64 = (0..threads * per_thread).sum();
    assert_eq!((snap.sum_secs() * 1e9).round() as u64, expected_sum);
}

/// The tracer is process-global; tests that reconfigure it serialize here
/// and restore the defaults before releasing the lock.
fn tracer_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn reset_tracer() {
    trace::set_enabled(false);
    trace::set_thread_capacity(trace::DEFAULT_THREAD_CAPACITY);
    trace::drain();
}

#[test]
fn ring_overflow_keeps_newest_in_order() {
    let _guard = tracer_lock();
    trace::set_enabled(true);
    trace::set_thread_capacity(8);
    trace::drain();
    let already_dropped = trace::dropped();
    for i in 0..20u32 {
        trace::record_complete(format!("prop/ring-{i}"), f64::from(i), 1.0);
    }
    let events: Vec<_> = trace::drain()
        .into_iter()
        .filter(|e| e.name.starts_with("prop/ring-"))
        .collect();
    reset_tracer();
    assert_eq!(events.len(), 8, "capacity bounds the ring");
    let names: Vec<&str> = events.iter().map(|e| e.name.as_ref()).collect();
    let expected: Vec<String> = (12..20).map(|i| format!("prop/ring-{i}")).collect();
    assert_eq!(names, expected, "newest events win, drained in order");
    assert!(
        trace::dropped() >= already_dropped + 12,
        "overflow is counted"
    );
}

#[test]
fn concurrent_spans_drain_from_every_thread() {
    let _guard = tracer_lock();
    trace::set_enabled(true);
    trace::drain();
    let threads = 4usize;
    let per_thread = 50usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for i in 0..per_thread {
                    let _span = trace::span_owned(format!("prop/conc-{t}-{i}"));
                    std::hint::black_box(t * i);
                }
            });
        }
    });
    let events: Vec<_> = trace::drain()
        .into_iter()
        .filter(|e| e.name.starts_with("prop/conc-"))
        .collect();
    reset_tracer();
    assert_eq!(events.len(), threads * per_thread, "no event lost");
    assert!(
        events.windows(2).all(|w| w[0].start_us <= w[1].start_us),
        "drain orders by start time"
    );
    // Each thread's events carry one distinct tracer tid.
    for t in 0..threads {
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.name.starts_with(&format!("prop/conc-{t}-")))
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids.len(), 1, "thread {t} maps to one tid");
    }
    // A second drain finds nothing left.
    assert!(trace::drain()
        .iter()
        .all(|e| !e.name.starts_with("prop/conc-")));
}

#[test]
fn timer_guard_records_into_the_histogram() {
    let h = Histogram::new();
    {
        let _t = h.start().expect("standalone histograms are enabled");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(h.count(), 1);
    let p = h.percentiles().unwrap();
    assert!(p.p50 >= 0.5e-3, "recorded at least the sleep: {p:?}");
}
