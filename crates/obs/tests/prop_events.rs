//! Property/concurrency coverage for the flight recorder (`tdb_obs::event`):
//! multi-thread bursts below capacity lose nothing, overflow keeps the
//! newest events in order with an exact drop count, and draining while
//! other threads record never blocks or tears an event.
//!
//! The recorder is process-global, so every test serializes on one lock and
//! restores the default capacity/enabled state before releasing it.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use tdb_obs::event::{self, Value};
use tdb_obs::Level;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn field_u64(e: &event::Event, key: &str) -> u64 {
    match e.fields.iter().find(|(k, _)| *k == key) {
        Some((_, Value::U64(v))) => *v,
        other => panic!("field {key}: {other:?}"),
    }
}

#[test]
fn multi_thread_bursts_below_capacity_lose_nothing() {
    let _guard = lock();
    event::set_enabled(true);
    event::drain();
    let drops_before = event::dropped();

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 1_000; // well below the per-thread ring capacity
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    tdb_obs::event!(Level::Debug, "prop/burst", t = t, i = i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    event::set_enabled(false);
    let events: Vec<_> = event::drain()
        .into_iter()
        .filter(|e| e.target == "prop/burst")
        .collect();
    assert_eq!(events.len(), (THREADS * PER_THREAD) as usize);
    assert_eq!(event::dropped(), drops_before, "no overflow below capacity");

    // Every (thread, index) pair arrives exactly once, and per-thread order
    // is preserved in the sequence-sorted drain.
    let mut seen = BTreeSet::new();
    let mut last_i = vec![None::<u64>; THREADS as usize];
    for e in &events {
        let (t, i) = (field_u64(e, "t"), field_u64(e, "i"));
        assert!(seen.insert((t, i)), "duplicate event ({t}, {i})");
        if let Some(prev) = last_i[t as usize] {
            assert!(i > prev, "thread {t} out of order: {i} after {prev}");
        }
        last_i[t as usize] = Some(i);
    }
    assert_eq!(seen.len(), (THREADS * PER_THREAD) as usize);
}

#[test]
fn overflow_keeps_newest_in_order_with_exact_drop_count() {
    let _guard = lock();
    event::set_enabled(true);
    event::drain();
    let drops_before = event::dropped();

    const CAPACITY: usize = 64;
    const TOTAL: u64 = 1_000;
    event::set_thread_capacity(CAPACITY);
    // One recording thread: its fresh ring makes the count exact.
    thread::spawn(|| {
        for i in 0..TOTAL {
            tdb_obs::event!(Level::Info, "prop/overflow", i = i);
        }
    })
    .join()
    .unwrap();

    event::set_thread_capacity(event::DEFAULT_THREAD_CAPACITY);
    event::set_enabled(false);
    let events: Vec<_> = event::drain()
        .into_iter()
        .filter(|e| e.target == "prop/overflow")
        .collect();
    assert_eq!(events.len(), CAPACITY);
    let expect_first = TOTAL - CAPACITY as u64;
    for (offset, e) in events.iter().enumerate() {
        assert_eq!(field_u64(e, "i"), expect_first + offset as u64);
    }
    assert_eq!(
        event::dropped() - drops_before,
        TOTAL - CAPACITY as u64,
        "every overflowed event is accounted for"
    );
}

#[test]
fn drain_during_concurrent_record_never_blocks_or_tears() {
    let _guard = lock();
    event::set_enabled(true);
    event::drain();

    const WRITERS: u64 = 4;
    const PER_THREAD: u64 = 5_000;
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    tdb_obs::event!(Level::Debug, "prop/race", t = t, i = i, tag = "payload");
                }
            })
        })
        .collect();

    // Drain and peek continuously while the writers hammer the rings. Each
    // observed event must be whole: both counters present and the payload
    // string intact.
    let mut collected = Vec::new();
    let drainer = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let _ = event::recent();
                rounds += 1;
            }
            rounds
        })
    };
    while collected
        .iter()
        .filter(|e: &&event::Event| e.target == "prop/race")
        .count()
        < (WRITERS * PER_THREAD) as usize
    {
        collected.extend(event::drain());
    }
    for w in writers {
        w.join().unwrap();
    }
    collected.extend(event::drain());
    stop.store(true, Ordering::Relaxed);
    let rounds = drainer.join().unwrap();
    assert!(rounds > 0, "concurrent peeker made progress");
    event::set_enabled(false);

    let mut seen = BTreeSet::new();
    for e in collected.iter().filter(|e| e.target == "prop/race") {
        let (t, i) = (field_u64(e, "t"), field_u64(e, "i"));
        match e.fields.iter().find(|(k, _)| *k == "tag") {
            Some((_, Value::Str(s))) => assert_eq!(s, "payload", "torn payload at ({t}, {i})"),
            other => panic!("missing tag field: {other:?}"),
        }
        assert!(seen.insert((t, i)), "duplicate event ({t}, {i})");
    }
    assert_eq!(
        seen.len(),
        (WRITERS * PER_THREAD) as usize,
        "drain-while-recording must not lose events below capacity"
    );
}
