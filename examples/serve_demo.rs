//! Serving demo: a resident hop-constrained cover service under live load.
//!
//! A fraud-screening deployment keeps one cover of the transaction graph
//! resident: screening workers ask "is this account a designated breaker?"
//! and "which breakers would intercept a transfer u -> v?" thousands of times
//! a second, while the ledger streams edge updates in. `tdb-serve` keeps the
//! two paths apart — a single writer applies updates and publishes immutable
//! epoch-stamped snapshots; readers answer from the latest snapshot over a
//! line-based TCP protocol and never wait on a repair.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::time::{Duration, Instant};

use tdb::prelude::*;
use tdb_core::Algorithm;

fn main() {
    // A synthetic transaction graph: 2k accounts, 8k transfer edges.
    let graph = tdb::graph::gen::erdos_renyi_gnm(2_000, 8_000, 0x5EED);
    let constraint = HopConstraint::new(4);
    println!(
        "transaction graph: {} vertices, {} edges, k = {}",
        graph.num_vertices(),
        graph.num_edges(),
        constraint.max_hops
    );

    // Seed the cover once, then hand it to the resident server.
    let t = Instant::now();
    let dynamic = Solver::new(Algorithm::TdbPlusPlus)
        .solve_dynamic(graph, &constraint)
        .expect("unbudgeted solve cannot fail");
    println!(
        "seed cover: {} breakers in {:.1}ms\n",
        dynamic.cover().len(),
        t.elapsed().as_secs_f64() * 1e3
    );
    let server = CoverServer::start(
        dynamic,
        ServeConfig {
            // Also expose GET /metrics, /healthz and /events for stock
            // scrapers (the line protocol's METRICS / HEALTH? equivalents).
            http_addr: Some("127.0.0.1:0".to_string()),
            ..Default::default()
        },
    )
    .expect("binding a loopback port cannot fail");
    println!("serving on {}", server.local_addr());
    if let Some(http) = server.http_addr() {
        println!("http exposition on http://{http}/metrics /healthz /events");
    }

    // A screening worker: membership and breaker queries over TCP.
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let probe = 42;
    let answer = client.cover(probe).expect("COVER?");
    println!(
        "COVER? {probe}     -> {} (epoch {})",
        if answer.contained { "IN" } else { "OUT" },
        answer.epoch
    );
    let (u, v) = (7, 1_200);
    let breakers = client.breakers(u, v).expect("BREAKERS?");
    println!(
        "BREAKERS? {u} {v} -> {} candidate breaker(s) on short cycles through a hypothetical {u}->{v}",
        breakers.breakers.len()
    );

    // The ledger streams updates; each acknowledged op becomes visible at a
    // later epoch. Insert a tight cycle and watch the epoch advance.
    let before = client.stat_u64("epoch").expect("STATS");
    for (a, b) in [(1_990, 1_991), (1_991, 1_992), (1_992, 1_990)] {
        client.insert(a, b).expect("INSERT");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut epoch = before;
    while epoch <= before && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
        epoch = client.stat_u64("epoch").expect("STATS");
    }
    println!("\ninserted a 3-cycle: epoch {before} -> {epoch}");
    let covered = (1_990..1_993)
        .filter(|&a| client.cover(a).expect("COVER?").contained)
        .count();
    println!("the new cycle is broken by {covered} breaker(s) among its own vertices");

    // The watchdog keeps the deployment honest: writer heartbeat, queue
    // saturation, publish staleness, minimize cadence.
    println!(
        "HEALTH?           -> {}",
        client.health_status().expect("HEALTH?")
    );

    // Graceful shutdown returns the final engine state for persistence.
    client.shutdown().expect("SHUTDOWN");
    let cover = server.join();
    println!(
        "\nshut down cleanly: final cover {} breakers, valid {}",
        cover.cover().len(),
        cover.is_valid()
    );
}
