//! Quickstart: build a graph, compute a hop-constrained cycle cover with every
//! algorithm family through the unified `Solver` API, and verify the results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use tdb::prelude::*;
use tdb_graph::gen::{erdos_renyi_gnm, Xoshiro256};

fn main() {
    // --- 1. A hand-built graph -------------------------------------------------
    // The e-commerce network of Figure 1 in the paper, with vertices
    // a..h mapped to 0..7. Three short money-flow cycles all pass through `a`.
    let mut builder = GraphBuilder::new();
    builder.extend_edges([
        (0, 1), // a -> b
        (1, 2), // b -> c
        (2, 0), // c -> a
        (0, 3), // a -> d
        (3, 4), // d -> e
        (4, 0), // e -> a
        (0, 5), // a -> f
        (5, 6), // f -> g
        (6, 7), // g -> h
        (7, 0), // h -> a
    ]);
    let figure1 = builder.build();

    let constraint = HopConstraint::new(5);

    // The bottom-up heuristic (BUR+) favours the hub account `a`, which sits on
    // all three cycles, and finds the optimal single-vertex cover.
    let bur = Solver::new(Algorithm::BurPlus)
        .solve(&figure1, &constraint)
        .unwrap();
    println!(
        "Figure-1 network, BUR+ : cover {:?} (size {})",
        bur.cover.as_slice(),
        bur.cover_size()
    );
    assert_eq!(
        bur.cover.as_slice(),
        &[0],
        "vertex `a` covers all three cycles"
    );

    // The top-down algorithm is orders of magnitude faster at scale but, like
    // every algorithm here, only guarantees a *minimal* cover — on this tiny
    // graph its ascending scan keeps one vertex per cycle instead of the hub.
    let run = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&figure1, &constraint)
        .unwrap();
    println!(
        "Figure-1 network, TDB++: cover {:?} (size {})",
        run.cover.as_slice(),
        run.cover_size()
    );
    assert!(verify_cover(&figure1, &run.cover, &constraint).is_valid_and_minimal());
    assert!(verify_cover(&figure1, &bur.cover, &constraint).is_valid_and_minimal());

    // --- 2. A random graph, all algorithms ------------------------------------
    // One `Solver` per algorithm: the same two-line call drives every family.
    let graph = erdos_renyi_gnm(2_000, 10_000, 42);
    let constraint = HopConstraint::new(4);
    println!("\nrandom G(2000, 10000), k = 4:");
    for algorithm in [
        Algorithm::TdbPlusPlus,
        Algorithm::TdbExtended,
        Algorithm::TdbParallel,
    ] {
        let run = Solver::new(algorithm).solve(&graph, &constraint).unwrap();
        let verification = verify_cover(&graph, &run.cover, &constraint);
        println!(
            "  {:<10} cover size {:>5}  time {:>8.3}s  valid={} minimal={}",
            run.metrics.algorithm,
            run.cover_size(),
            run.metrics.elapsed_secs(),
            verification.is_valid,
            verification.is_minimal,
        );
        assert!(verification.is_valid_and_minimal());
    }

    // --- 3. Time budgets -------------------------------------------------------
    // A solver with a time budget fails fast instead of running unbounded: the
    // exhaustive BUR baseline cannot finish this graph in a millisecond.
    match Solver::new(Algorithm::Bur)
        .with_time_budget(Duration::from_millis(1))
        .solve(&graph, &constraint)
    {
        Err(SolveError::BudgetExceeded { budget, elapsed }) => println!(
            "\nBUR with a {:.0}ms budget stopped after {:.3}ms, as intended",
            budget.as_secs_f64() * 1e3,
            elapsed.as_secs_f64() * 1e3
        ),
        Ok(run) => println!(
            "\nBUR finished within the 1ms budget (size {}) — fast machine!",
            run.cover_size()
        ),
        Err(other) => panic!("unexpected solve error: {other}"),
    }

    // --- 4. Sampling spot checks -----------------------------------------------
    // Pick random vertices outside the cover and confirm none of them sits on a
    // hop-constrained cycle in the reduced graph.
    let run = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&graph, &constraint)
        .unwrap();
    let active = run.cover.reduced_active_set(graph.num_vertices());
    let mut searcher = tdb::cycle::BlockSearcher::new(graph.num_vertices());
    let mut rng = Xoshiro256::seed_from_u64(7);
    for _ in 0..50 {
        let v = rng.next_index(graph.num_vertices()) as VertexId;
        if active.is_active(v) {
            assert!(!searcher.is_on_constrained_cycle(&graph, &active, v, &constraint));
        }
    }
    println!("\nspot checks passed: the reduced graph is free of cycles of length 3..=4");
}
