//! Deadlock-potential analysis of a lock graph (application (3) of the paper's
//! introduction).
//!
//! In a lock-order graph, vertices are locks and a directed edge `(a, b)` means
//! some thread acquired `b` while holding `a`. A cycle signals a potential
//! deadlock; long cycles are of little practical interest because they require
//! many threads to interleave exactly, so the analysis is naturally
//! hop-constrained. A minimal hop-constrained cycle cover is a smallest set of
//! locks whose acquisition discipline must be refactored (e.g. replaced by a
//! single coarser lock or given a global order) to rule out every short
//! deadlock pattern.
//!
//! ```text
//! cargo run --release --example deadlock_detection
//! ```

use std::collections::HashMap;

use tdb::prelude::*;

/// A recorded lock-acquisition trace: each entry is (thread, ordered list of
/// locks it held simultaneously, outermost first).
fn synthetic_traces() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("worker-1", vec!["accounts", "ledger", "audit"]),
        ("worker-2", vec!["ledger", "accounts"]), // classic AB-BA with worker-1
        ("worker-3", vec!["cache", "accounts", "metrics"]),
        ("worker-4", vec!["metrics", "cache"]), // AB-BA with worker-3
        ("worker-5", vec!["scheduler", "queue", "cache"]),
        ("worker-6", vec!["queue", "scheduler"]),
        ("worker-7", vec!["audit", "ledger"]),
        ("worker-8", vec!["config", "logging"]),
        ("worker-9", vec!["logging", "metrics", "config"]),
        ("reporter", vec!["ledger", "audit", "accounts"]),
    ]
}

fn main() {
    // Build the lock graph from the traces.
    let traces = synthetic_traces();
    let mut lock_ids: HashMap<&str, VertexId> = HashMap::new();
    let mut names: Vec<&str> = Vec::new();
    let mut id_of = |name: &'static str, names: &mut Vec<&'static str>| -> VertexId {
        *lock_ids.entry(name).or_insert_with(|| {
            names.push(name);
            (names.len() - 1) as VertexId
        })
    };
    let mut builder = GraphBuilder::new();
    for (_, held) in &traces {
        for window in held.windows(2) {
            let a = id_of(window[0], &mut names);
            let b = id_of(window[1], &mut names);
            builder.add_edge(a, b);
        }
    }
    let lock_graph = builder.build();
    println!(
        "lock graph: {} locks, {} acquisition-order edges",
        lock_graph.num_vertices(),
        lock_graph.num_edges()
    );

    // Deadlock patterns involving up to 4 locks are the ones worth fixing;
    // 2-lock AB-BA cycles are included (this is exactly the `with_two_cycles`
    // mode, since a 2-cycle in the lock graph is already a deadlock).
    let constraint = HopConstraint::with_two_cycles(4);
    let run = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&lock_graph, &constraint)
        .unwrap();
    let verification = verify_cover(&lock_graph, &run.cover, &constraint);
    assert!(verification.is_valid_and_minimal());

    println!(
        "\n{} lock(s) must be refactored to eliminate every deadlock pattern of <= 4 locks:",
        run.cover_size()
    );
    for v in run.cover.iter() {
        println!("  - {}", names[v as usize]);
    }

    // Show the deadlock patterns that motivated each refactoring target.
    let all_active = ActiveSet::all_active(lock_graph.num_vertices());
    let cycles =
        tdb::cycle::enumerate::enumerate_cycles(&lock_graph, &all_active, &constraint, 1000);
    println!(
        "\nall {} short deadlock patterns (each hits the refactor set):",
        cycles.len()
    );
    for cycle in &cycles {
        let pretty: Vec<&str> = cycle.iter().map(|&v| names[v as usize]).collect();
        let covered = cycle.iter().any(|&v| run.cover.contains(v));
        assert!(covered);
        println!("  {} -> (back to {})", pretty.join(" -> "), pretty[0]);
    }

    // After "refactoring" (removing the covered locks), no short pattern remains.
    let remaining = lock_graph.remove_vertices(
        &(0..lock_graph.num_vertices())
            .map(|v| run.cover.contains(v as VertexId))
            .collect::<Vec<_>>(),
    );
    let leftover = tdb::cycle::enumerate::enumerate_cycles(
        &remaining,
        &ActiveSet::all_active(remaining.num_vertices()),
        &constraint,
        10,
    );
    assert!(leftover.is_empty());
    println!("\nafter refactoring the selected locks the lock graph has no short cycles left.");
}
