//! Clocked-register placement in combinational circuit design (application (1)
//! of the paper's introduction).
//!
//! A combinational circuit is a graph of gates; a feedback cycle is a potential
//! "racing condition" where a gate sees new inputs before its output has
//! stabilized. The classic fix is to insert a clocked register on every cycle.
//! Because long feedback paths have enough propagation delay to be harmless,
//! only *short* cycles need registers — the hop constraint is intrinsic to the
//! application. A minimal hop-constrained cycle cover is therefore a minimal
//! set of gate outputs at which to place registers.
//!
//! The example builds a layered combinational core with realistic feedback
//! wires, then compares register counts across the hop threshold and across
//! algorithms.
//!
//! ```text
//! cargo run --release --example circuit_design
//! ```

use tdb::prelude::*;
use tdb_graph::gen::Xoshiro256;
use tdb_graph::GraphBuilder;

/// Build a circuit: `layers × width` gates wired mostly forward (combinational
/// logic), plus a population of feedback wires creating short cycles.
fn build_circuit(layers: usize, width: usize, feedback_wires: usize, seed: u64) -> CsrGraph {
    let n = layers * width;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * 3 + feedback_wires);

    // Forward wiring: every gate drives 2–3 gates of the next layer.
    for layer in 0..layers - 1 {
        for slot in 0..width {
            let gate = (layer * width + slot) as VertexId;
            let fanout = 2 + rng.next_index(2);
            for _ in 0..fanout {
                let target = ((layer + 1) * width + rng.next_index(width)) as VertexId;
                builder.add_edge(gate, target);
            }
        }
    }
    // Feedback wiring: latch-like wires from later layers back to earlier ones,
    // biased towards short spans (which is what creates racing conditions).
    for _ in 0..feedback_wires {
        let span = 1 + rng.next_index(3); // jump back 1..=3 layers
        let from_layer = span + rng.next_index(layers - span);
        let from = (from_layer * width + rng.next_index(width)) as VertexId;
        let to = ((from_layer - span) * width + rng.next_index(width)) as VertexId;
        builder.add_edge(from, to);
    }
    builder.reserve_vertices(n);
    builder.build()
}

fn main() {
    let circuit = build_circuit(24, 48, 420, 7);
    println!(
        "circuit: {} gates, {} wires",
        circuit.num_vertices(),
        circuit.num_edges()
    );

    // How many registers do we need as the "harmful feedback length" grows?
    println!("\nregisters required per racing-condition length threshold:");
    let fast_solver = Solver::new(Algorithm::TdbPlusPlus);
    let mut previous = 0usize;
    for k in 3..=8usize {
        let constraint = HopConstraint::new(k);
        let run = fast_solver.solve(&circuit, &constraint).unwrap();
        assert!(verify_cover(&circuit, &run.cover, &constraint).is_valid_and_minimal());
        println!(
            "  cycles up to {k} gates: {:>4} registers ({:.3}s, {} searches, {} BFS-filter skips)",
            run.cover_size(),
            run.metrics.elapsed_secs(),
            run.metrics.cycle_queries,
            run.metrics.filter_released,
        );
        // Longer thresholds can only demand at least as many registers.
        assert!(run.cover_size() >= previous);
        previous = run.cover_size();
    }

    // Compare the register count of the fast algorithm against the small-cover
    // baseline on the k = 5 design point (the trade-off of Table III).
    let constraint = HopConstraint::new(5);
    let fast = fast_solver.solve(&circuit, &constraint).unwrap();
    let small = Solver::new(Algorithm::BurPlus)
        .solve(&circuit, &constraint)
        .unwrap();
    println!(
        "\nk = 5 design point: TDB++ places {} registers in {:.3}s, BUR+ places {} in {:.3}s",
        fast.cover_size(),
        fast.metrics.elapsed_secs(),
        small.cover_size(),
        small.metrics.elapsed_secs()
    );
    assert!(verify_cover(&circuit, &small.cover, &constraint).is_valid);

    // Registers break every short cycle: the register-free subcircuit is clean.
    let keep: Vec<bool> = (0..circuit.num_vertices())
        .map(|v| !fast.cover.contains(v as VertexId))
        .collect();
    let without_registers = circuit.induced_subgraph(&keep);
    let residual = tdb::cycle::enumerate::enumerate_cycles(
        &without_registers,
        &ActiveSet::all_active(without_registers.num_vertices()),
        &constraint,
        5,
    );
    assert!(residual.is_empty());
    println!("registered circuit verified: no racing condition of length <= 5 remains.");
}
