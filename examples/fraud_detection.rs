//! Streaming fraud detection on an e-commerce transaction network
//! (application (2) of the paper's introduction) — now on the live path.
//!
//! Accounts are vertices, money transfers are directed edges, and *transfers
//! never stop arriving*. Short transfer cycles are strong indicators of money
//! laundering; a minimal hop-constrained cycle cover is a smallest-effort set
//! of accounts whose audit breaks every suspicious cycle. A batch solver can
//! only audit yesterday's graph — this example keeps the audit set current
//! *while the stream flows*:
//!
//! 1. synthesize a transaction network and seed a [`DynamicCover`] with one
//!    static solve,
//! 2. stream batches of new transfers and expirations through
//!    [`DynamicCover::apply`], keeping the audit set valid after every batch,
//! 3. plant a laundering ring mid-stream and show it is caught the moment its
//!    closing transfer arrives — no re-solve, and
//! 4. compare the incremental cost per batch with the full re-solve a static
//!    deployment would need.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use std::time::Instant;

use tdb::prelude::*;
use tdb_graph::gen::{preferential_attachment, PreferentialConfig, Xoshiro256};

const ACCOUNTS: usize = 5_000;
const SUSPICIOUS_LEN: usize = 5; // audit every transfer cycle of length <= 5
const BATCHES: usize = 20;
const TRANSFERS_PER_BATCH: usize = 200;

fn main() {
    // A realistic scale-free background of historical transfers.
    let history = preferential_attachment(&PreferentialConfig {
        num_vertices: ACCOUNTS,
        out_degree: 3,
        reciprocity: 0.05,
        random_rewire: 0.2,
        seed: 2023,
    });
    let constraint = HopConstraint::new(SUSPICIOUS_LEN);

    // One static solve seeds the live audit set.
    let solver = Solver::new(Algorithm::TdbPlusPlus);
    let seed_timer = Instant::now();
    let mut live = solver.solve_dynamic(history, &constraint).unwrap();
    let seed_elapsed = seed_timer.elapsed();
    println!(
        "seeded: {} accounts, {} transfers -> audit set of {} accounts ({:.3}s static solve)",
        live.graph().vertex_count(),
        live.graph().edge_count(),
        live.cover().len(),
        seed_elapsed.as_secs_f64()
    );

    // The laundering ring that will assemble itself mid-stream: four mule
    // accounts cycling funds. Its closing transfer arrives in batch 12.
    let ring: Vec<VertexId> = (0..4).map(|i| (ACCOUNTS - 1 - i) as VertexId).collect();
    let ring_batch = 12usize;

    let mut rng = Xoshiro256::seed_from_u64(77);
    let mut incremental_total = std::time::Duration::ZERO;
    for batch_no in 0..BATCHES {
        let mut batch = EdgeBatch::new();
        for _ in 0..TRANSFERS_PER_BATCH {
            let u = rng.next_index(ACCOUNTS) as VertexId;
            let v = rng.next_index(ACCOUNTS) as VertexId;
            if u == v {
                continue;
            }
            if rng.next_index(4) == 0 {
                batch.remove(u, v); // an old transfer ages out of the window
            } else {
                batch.insert(u, v);
            }
        }
        if batch_no == ring_batch {
            // The mules start cycling: the last hop closes the ring.
            for w in ring.windows(2) {
                batch.insert(w[0], w[1]);
            }
            batch.insert(ring[ring.len() - 1], ring[0]);
        }

        let metrics = live.apply(&batch);
        incremental_total += metrics.elapsed;

        if batch_no == ring_batch {
            let caught = ring.iter().any(|&v| live.cover().contains(v));
            assert!(caught, "the laundering ring escaped the live audit set");
            println!(
                "batch {batch_no:>2}: ring {ring:?} closed and was caught in-batch \
                 ({} repairs, {} breakers, {:.3}ms)",
                metrics.cycles_repaired,
                metrics.breakers_added,
                metrics.elapsed.as_secs_f64() * 1e3
            );
        } else if batch_no % 5 == 0 {
            println!(
                "batch {batch_no:>2}: {:>3} updates applied, audit set {} accounts \
                 ({} breakers, {:.3}ms)",
                metrics.updates(),
                live.cover().len(),
                metrics.breakers_added,
                metrics.elapsed.as_secs_f64() * 1e3
            );
        }
    }

    // The audit set drifted above minimal under churn; one lazy pass fixes it.
    let pruned = live.minimize();
    println!(
        "\nre-minimized: dropped {pruned} redundant accounts -> audit set {}",
        live.cover().len()
    );

    // Independent audit of the final state, and the cost comparison.
    let final_graph = live.materialize();
    let verification = verify_cover(&final_graph, live.cover(), &constraint);
    assert!(verification.is_valid_and_minimal());
    let resolve_timer = Instant::now();
    let scratch = solver.solve(&final_graph, &constraint).unwrap();
    let resolve_elapsed = resolve_timer.elapsed();
    println!(
        "final audit set {} accounts (from-scratch solver: {}) — valid and minimal",
        live.cover().len(),
        scratch.cover_size()
    );
    println!(
        "incremental: {:.3}ms total across {BATCHES} batches ({:.0} updates/sec) \
         vs {:.3}ms per full re-solve",
        incremental_total.as_secs_f64() * 1e3,
        live.totals().updates() as f64 / incremental_total.as_secs_f64(),
        resolve_elapsed.as_secs_f64() * 1e3
    );
}
