//! Streaming fraud detection on an e-commerce transaction network
//! (application (2) of the paper's introduction) — now on the live path.
//!
//! Accounts are vertices, money transfers are directed edges, and *transfers
//! never stop arriving*. Short transfer cycles are strong indicators of money
//! laundering; a minimal hop-constrained cycle cover is a smallest-effort set
//! of accounts whose audit breaks every suspicious cycle. A batch solver can
//! only audit yesterday's graph — this example keeps the audit set current
//! *while the stream flows*:
//!
//! 1. synthesize a transaction network, price each account (suspending a
//!    high-value account costs more), and solve a *weighted* cover through
//!    [`CoverRequest`] — printing the cover cost and the top-5 `EXPLAIN?`
//!    breakers (which audited accounts break the most laundering cycles),
//! 2. seed a [`DynamicCover`] from the weighted solver, so streaming repairs
//!    keep avoiding expensive accounts,
//! 3. stream batches of new transfers and expirations through
//!    [`DynamicCover::apply`], keeping the audit set valid after every batch,
//! 4. plant a laundering ring mid-stream and show it is caught the moment its
//!    closing transfer arrives — no re-solve, and
//! 5. compare the incremental cost per batch with the full re-solve a static
//!    deployment would need.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use std::time::Instant;

use tdb::prelude::*;
use tdb_graph::gen::{preferential_attachment, PreferentialConfig, Xoshiro256};
use tdb_graph::{CostModel, Graph};

const ACCOUNTS: usize = 5_000;
const SUSPICIOUS_LEN: usize = 5; // audit every transfer cycle of length <= 5
const BATCHES: usize = 20;
const TRANSFERS_PER_BATCH: usize = 200;

fn main() {
    // A realistic scale-free background of historical transfers.
    let history = preferential_attachment(&PreferentialConfig {
        num_vertices: ACCOUNTS,
        out_degree: 3,
        reciprocity: 0.05,
        random_rewire: 0.2,
        seed: 2023,
    });
    let constraint = HopConstraint::new(SUSPICIOUS_LEN);

    // Suspending an account for audit has a business cost: freezing a busy
    // high-value marketplace account hurts far more than freezing a quiet
    // mule. Accounts in the top tier by transaction volume are 100x as
    // expensive to suspend.
    const VIP_DEGREE: usize = 15;
    const VIP_COST: u64 = 100;
    let costs = CostModel::from_fn(history.num_vertices(), |v| {
        if history.out_degree(v) + history.in_degree(v) >= VIP_DEGREE {
            VIP_COST
        } else {
            1
        }
    });
    let vip_count =
        |cover: &CycleCover| cover.iter().filter(|&v| costs.cost(v) == VIP_COST).count();

    // The weighted, explanatory solve: minimize audit *cost*, not head-count.
    let mut request = CoverRequest::new(Algorithm::TdbPlusPlus, SUSPICIOUS_LEN);
    request.objective = Objective::MinWeight;
    request.costs = costs.clone();
    request.explain = true;
    let weighted = request.solve(&history).unwrap();

    // Cardinality baseline for comparison: smallest audit set, cost ignored.
    let baseline = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&history, &constraint)
        .unwrap();
    println!(
        "weighted solve: {} accounts at cost {} ({} VIP) — cardinality baseline: \
         {} accounts at cost {} ({} VIP)",
        weighted.cover_size(),
        weighted.total_cost,
        vip_count(&weighted.cover),
        baseline.cover_size(),
        costs.total(baseline.cover.iter()),
        vip_count(&baseline.cover),
    );
    println!("top-5 audit accounts by laundering cycles broken (EXPLAIN?):");
    for stat in weighted.breaker_stats.iter().take(5) {
        println!(
            "  account {:>4}: breaks {:>4} cycles{} at suspension cost {}",
            stat.vertex,
            stat.cycles_through,
            if stat.truncated { "+" } else { "" },
            stat.cost
        );
    }

    // The weighted solver seeds the live audit set, so streaming repairs keep
    // avoiding expensive accounts.
    let solver = Solver::from_request(request);
    let seed_timer = Instant::now();
    let mut live = solver.solve_dynamic(history, &constraint).unwrap();
    let seed_elapsed = seed_timer.elapsed();
    println!(
        "seeded: {} accounts, {} transfers -> audit set of {} accounts ({:.3}s static solve)",
        live.graph().vertex_count(),
        live.graph().edge_count(),
        live.cover().len(),
        seed_elapsed.as_secs_f64()
    );

    // The laundering ring that will assemble itself mid-stream: four mule
    // accounts cycling funds. Its closing transfer arrives in batch 12.
    let ring: Vec<VertexId> = (0..4).map(|i| (ACCOUNTS - 1 - i) as VertexId).collect();
    let ring_batch = 12usize;

    let mut rng = Xoshiro256::seed_from_u64(77);
    let mut incremental_total = std::time::Duration::ZERO;
    for batch_no in 0..BATCHES {
        let mut batch = EdgeBatch::new();
        for _ in 0..TRANSFERS_PER_BATCH {
            let u = rng.next_index(ACCOUNTS) as VertexId;
            let v = rng.next_index(ACCOUNTS) as VertexId;
            if u == v {
                continue;
            }
            if rng.next_index(4) == 0 {
                batch.remove(u, v); // an old transfer ages out of the window
            } else {
                batch.insert(u, v);
            }
        }
        if batch_no == ring_batch {
            // The mules start cycling: the last hop closes the ring.
            for w in ring.windows(2) {
                batch.insert(w[0], w[1]);
            }
            batch.insert(ring[ring.len() - 1], ring[0]);
        }

        let metrics = live.apply(&batch);
        incremental_total += metrics.elapsed;

        if batch_no == ring_batch {
            let caught = ring.iter().any(|&v| live.cover().contains(v));
            assert!(caught, "the laundering ring escaped the live audit set");
            println!(
                "batch {batch_no:>2}: ring {ring:?} closed and was caught in-batch \
                 ({} repairs, {} breakers, {:.3}ms)",
                metrics.cycles_repaired,
                metrics.breakers_added,
                metrics.elapsed.as_secs_f64() * 1e3
            );
        } else if batch_no % 5 == 0 {
            println!(
                "batch {batch_no:>2}: {:>3} updates applied, audit set {} accounts \
                 ({} breakers, {:.3}ms)",
                metrics.updates(),
                live.cover().len(),
                metrics.breakers_added,
                metrics.elapsed.as_secs_f64() * 1e3
            );
        }
    }

    // The audit set drifted above minimal under churn; one lazy pass fixes it.
    let pruned = live.minimize();
    println!(
        "\nre-minimized: dropped {pruned} redundant accounts -> audit set {}",
        live.cover().len()
    );

    // Independent audit of the final state, and the cost comparison.
    let final_graph = live.materialize();
    let verification = verify_cover(&final_graph, live.cover(), &constraint);
    assert!(verification.is_valid_and_minimal());
    let resolve_timer = Instant::now();
    let scratch = solver.solve(&final_graph, &constraint).unwrap();
    let resolve_elapsed = resolve_timer.elapsed();
    println!(
        "final audit set {} accounts at cost {} (from-scratch solver: {}) — valid and minimal",
        live.cover().len(),
        live.cover_cost(),
        scratch.cover_size()
    );
    println!(
        "incremental: {:.3}ms total across {BATCHES} batches ({:.0} updates/sec) \
         vs {:.3}ms per full re-solve",
        incremental_total.as_secs_f64() * 1e3,
        live.totals().updates() as f64 / incremental_total.as_secs_f64(),
        resolve_elapsed.as_secs_f64() * 1e3
    );
}
