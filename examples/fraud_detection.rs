//! Fraud detection on an e-commerce transaction network (application (2) of the
//! paper's introduction).
//!
//! Accounts are vertices, money transfers are directed edges. Short transfer
//! cycles are strong indicators of money laundering; a *minimal hop-constrained
//! cycle cover* is a smallest-effort set of accounts whose audit breaks every
//! suspicious cycle. This example:
//!
//! 1. synthesizes a transaction network (scale-free, with a known planted
//!    laundering ring),
//! 2. computes covers for the "suspicious length" thresholds k = 3..=6,
//! 3. ranks the covered accounts by how many short cycles they sit on, and
//! 4. confirms the planted ring is caught.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use tdb::prelude::*;
use tdb_graph::gen::{preferential_attachment, PreferentialConfig};
use tdb_graph::GraphBuilder;

/// Build the transaction network: a realistic scale-free background plus one
/// planted laundering ring of 4 mule accounts cycling funds.
fn build_network(num_accounts: usize) -> (tdb_graph::CsrGraph, Vec<VertexId>) {
    let background = preferential_attachment(&PreferentialConfig {
        num_vertices: num_accounts,
        out_degree: 3,
        reciprocity: 0.05,
        random_rewire: 0.2,
        seed: 2023,
    });
    // Re-add the background edges plus the planted ring.
    let ring: Vec<VertexId> = vec![
        (num_accounts - 1) as VertexId,
        (num_accounts - 2) as VertexId,
        (num_accounts - 3) as VertexId,
        (num_accounts - 4) as VertexId,
    ];
    let mut builder = GraphBuilder::with_capacity(num_accounts, background.num_edges() + 8);
    builder.extend_edges(background.edges().map(|e| (e.source, e.target)));
    for w in ring.windows(2) {
        builder.add_edge(w[0], w[1]);
    }
    builder.add_edge(ring[ring.len() - 1], ring[0]);
    (builder.build(), ring)
}

fn main() {
    let (network, ring) = build_network(5_000);
    println!(
        "transaction network: {} accounts, {} transfers (planted laundering ring: {:?})",
        network.num_vertices(),
        network.num_edges(),
        ring
    );

    // Sweep the suspicious-cycle length threshold like a fraud team would,
    // through the same Solver the experiment harness uses.
    let solver = Solver::new(Algorithm::TdbPlusPlus);
    for k in 3..=6usize {
        let constraint = HopConstraint::new(k);
        let run = solver.solve(&network, &constraint).unwrap();
        let verification = verify_cover(&network, &run.cover, &constraint);
        assert!(verification.is_valid_and_minimal());
        println!(
            "k = {k}: audit set of {:>4} accounts breaks every transfer cycle of length <= {k} \
             ({} cycle checks, {:.3}s)",
            run.cover_size(),
            run.metrics.cycle_queries,
            run.metrics.elapsed_secs()
        );

        // The planted ring has length 4: from k = 4 on, the cover must touch it.
        if k >= 4 {
            let caught = ring.iter().any(|&v| run.cover.contains(v));
            assert!(caught, "the laundering ring escaped the k = {k} audit set");
        }
    }

    // Rank the k = 5 audit set by how many short cycles each account covers —
    // this is the "most suspicious individuals" ranking from the paper's
    // Figure 1 discussion.
    let constraint = HopConstraint::new(5);
    let run = solver.solve(&network, &constraint).unwrap();
    let mut ranked: Vec<(VertexId, usize)> = run
        .cover
        .iter()
        .map(|v| {
            let mut active = run.cover.reduced_active_set(network.num_vertices());
            active.activate(v);
            let cycles =
                tdb::cycle::enumerate::enumerate_cycles(&network, &active, &constraint, 200)
                    .into_iter()
                    .filter(|c| c.contains(&v))
                    .count();
            (v, cycles)
        })
        .collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\ntop suspicious accounts (k = 5 audit set, by residual cycle count):");
    for (account, cycles) in ranked.iter().take(5) {
        println!("  account {account:>6} — on {cycles:>3} otherwise-uncovered short cycles");
    }
}
