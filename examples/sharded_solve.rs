//! Sharded solving: partition a multi-component graph into its strongly
//! connected components and solve them as independent shards.
//!
//! Real service graphs — payment flows per region, dependency graphs per
//! tenant — decompose into many medium-sized SCCs joined by acyclic traffic.
//! Every hop-constrained cycle lives inside one SCC, so the cover problem
//! shards exactly: `Solver::with_sharding` solves the components
//! concurrently and merges the per-shard covers, reproducing the unsharded
//! result.
//!
//! ```text
//! cargo run --release --example sharded_solve
//! ```

use std::time::Instant;

use tdb::prelude::*;
use tdb_core::Algorithm;
use tdb_graph::gen::{multi_scc_chain, MultiSccConfig};

/// Four "regional" transaction blobs (rings with chords, one SCC each)
/// chained by one-way settlement edges, plus an acyclic reporting tail.
fn regional_graph() -> CsrGraph {
    multi_scc_chain(&MultiSccConfig::uniform(4, 2_000, 8_000, 2, 0x5EED))
}

fn main() {
    let g = regional_graph();
    let constraint = HopConstraint::new(5);
    println!(
        "regional transaction graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // The partition is inspectable on its own.
    let partition = Partitioner::new().partition(&g);
    println!(
        "partition: {} non-trivial SCCs (largest {}), {} trivial vertices\n",
        partition.shards.len(),
        partition.shards.first().map_or(0, |s| s.len()),
        partition.trivial_vertices
    );

    let start = Instant::now();
    let plain = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&g, &constraint)
        .expect("unbudgeted solve cannot fail");
    let plain_time = start.elapsed();

    let start = Instant::now();
    let sharded = Solver::new(Algorithm::TdbPlusPlus)
        .with_sharding(ShardingMode::Auto)
        .solve(&g, &constraint)
        .expect("unbudgeted solve cannot fail");
    let sharded_time = start.elapsed();

    println!(
        "whole-graph solve: cover {:>5} vertices in {:>8.3?}",
        plain.cover_size(),
        plain_time
    );
    println!(
        "sharded solve:     cover {:>5} vertices in {:>8.3?}  ({})",
        sharded.cover_size(),
        sharded_time,
        sharded.metrics.algorithm
    );
    assert_eq!(
        sharded.cover, plain.cover,
        "sharding must reproduce the unsharded cover"
    );

    let v = verify_cover(&g, &sharded.cover, &constraint);
    assert!(v.is_valid_and_minimal());
    println!("\ncovers identical, valid, and minimal — partitioning is exact");
}
